package serve

// The endpoint handlers. Single-object endpoints (compile, translate,
// simulate) write one deterministic JSON document on success and the
// JSON error envelope otherwise — a response is only ever written after
// the whole computation succeeded, so a deadline that fires
// mid-simulation yields a clean 504 and never a partial result. The
// streaming endpoints (grid, batch) emit NDJSON lines in deterministic
// input/index order (a reorder buffer sequences the concurrent
// workers), so repeated identical requests produce byte-identical
// streams.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"

	"hsmcc/internal/bench"
	"hsmcc/internal/synth"
	"hsmcc/internal/trace"
)

// CompileResponse answers /v1/compile.
type CompileResponse struct {
	Workload      string  `json:"workload"`
	Cores         int     `json:"cores"`
	Scale         float64 `json:"scale"`
	Funcs         int     `json:"funcs"`
	FullyCompiled bool    `json:"fully_compiled"`
	SourceBytes   int     `json:"source_bytes"`
	// Spans is the request's span tree, present only with ?spans=1
	// (wall-clock timings are not deterministic).
	Spans *Span `json:"spans,omitempty"`
}

// TranslateResponse answers /v1/translate.
type TranslateResponse struct {
	Workload        string  `json:"workload"`
	Cores           int     `json:"cores"`
	Scale           float64 `json:"scale"`
	Policy          string  `json:"policy"`
	MPBBudget       int     `json:"mpb_budget"`
	OnChipBytes     int     `json:"onchip_bytes"`
	PlacementDigest string  `json:"placement_digest,omitempty"`
	Source          string  `json:"source"`
	// Spans is the request's span tree, present only with ?spans=1.
	Spans *Span `json:"spans,omitempty"`
}

// SimulateResponse answers /v1/simulate: the baseline and translated
// runs of one cell plus the differential check, in exact simulated
// picoseconds — deterministic, so repeats are byte-identical.
type SimulateResponse struct {
	Workload        string  `json:"workload"`
	Cores           int     `json:"cores"`
	Scale           float64 `json:"scale"`
	Policy          string  `json:"policy"`
	MPBBudget       int     `json:"mpb_budget"`
	Engine          string  `json:"engine"`
	BaselinePs      uint64  `json:"baseline_ps"`
	RCCEPs          uint64  `json:"rcce_ps"`
	Speedup         float64 `json:"speedup"`
	Match           bool    `json:"match"`
	OnChipBytes     int     `json:"onchip_bytes"`
	PlacementDigest string  `json:"placement_digest,omitempty"`
	MPBAccesses     uint64  `json:"mpb_accesses"`
	SharedAccesses  uint64  `json:"shared_accesses"`
	// Trace is the Chrome trace_event document of the translated
	// (RCCE) simulation, present only with ?trace=1 — bulky, and only
	// recorded when this request actually ran the simulation.
	Trace *trace.Export `json:"trace,omitempty"`
	// Spans is the request's span tree, present only with ?spans=1.
	Spans *Span `json:"spans,omitempty"`
}

// GridRequest drives /v1/grid: a whole sweep through the shared cache,
// streamed back as one NDJSON bench.CellResult per line in
// deterministic cell-index order.
type GridRequest struct {
	Grid       bench.Grid `json:"grid"`
	Parallel   int        `json:"parallel,omitempty"`
	Engine     string     `json:"engine,omitempty"`
	DeadlineMs int64      `json:"deadline_ms,omitempty"`
}

// BatchItem is one request of a /v1/batch mix.
type BatchItem struct {
	// Op selects the operation: compile, translate or simulate.
	Op string `json:"op"`
	SimRequest
}

// BatchRequest drives /v1/batch: heterogeneous items executed
// concurrently, answered as one NDJSON BatchLine per item in input
// order.
type BatchRequest struct {
	Items    []BatchItem `json:"items"`
	Parallel int         `json:"parallel,omitempty"`
	// DeadlineMs bounds the whole batch (every item shares it).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// BatchLine is one /v1/batch result line. Exactly one of Error or the
// op's response field is set.
type BatchLine struct {
	Index     int                `json:"index"`
	Op        string             `json:"op"`
	Error     string             `json:"error,omitempty"`
	Status    int                `json:"status,omitempty"`
	Compile   *CompileResponse   `json:"compile,omitempty"`
	Translate *TranslateResponse `json:"translate,omitempty"`
	Simulate  *SimulateResponse  `json:"simulate,omitempty"`
}

// Admission weights: how many gate slots one unit of work charges. A
// simulate runs two simulations (baseline + translated), a grid one
// slot per cell, a batch the sum of its items.
const (
	weightCompile  = 1
	weightSimulate = 2
)

// admit charges weight slots against the in-flight gate, blocking (in
// the bounded FIFO queue) until slots free or ctx ends. On a shed it
// answers 503 + Retry-After itself and returns ok=false; otherwise the
// caller must defer the returned release.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, weight int) (func(), bool) {
	done := spansFrom(ctx).start("admission")
	release, err := s.gate.acquire(ctx, int64(weight))
	done()
	if err != nil {
		w.Header().Set("Retry-After", "1")
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return nil, false
	}
	return release, true
}

// decodeSim is the shared front half of the single-object endpoints.
func (s *Server) decodeSim(w http.ResponseWriter, r *http.Request) (*simCall, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return nil, false
	}
	done := spansFrom(r.Context()).start("decode")
	var req SimRequest
	if err := decodeJSON(r, &req); err != nil {
		done()
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return nil, false
	}
	call, err := s.resolve(&req)
	done()
	if err != nil {
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return nil, false
	}
	q := r.URL.Query()
	call.spans = q.Get("spans") == "1"
	call.trace = q.Get("trace") == "1"
	return call, true
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	call, ok := s.decodeSim(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.withDeadline(r.Context(), call.req.DeadlineMs)
	defer cancel()
	release, ok := s.admit(ctx, w, weightCompile)
	if !ok {
		return
	}
	defer release()
	resp, err := s.compile(ctx, call)
	if err != nil {
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) compile(ctx context.Context, c *simCall) (*CompileResponse, error) {
	cfg := s.config(ctx, c)
	pr, err := bench.CompileBaseline(c.workload, cfg)
	if err != nil {
		return nil, err
	}
	resp := &CompileResponse{
		Workload:      c.req.Workload,
		Cores:         c.req.Cores,
		Scale:         c.req.Scale,
		Funcs:         len(pr.Funcs),
		FullyCompiled: pr.FullyCompiled(),
		SourceBytes:   len(c.workload.Source(c.req.Cores, c.req.Scale)),
	}
	if c.spans {
		resp.Spans = spansFrom(ctx).tree()
	}
	return resp, nil
}

func (s *Server) handleTranslate(w http.ResponseWriter, r *http.Request) {
	call, ok := s.decodeSim(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.withDeadline(r.Context(), call.req.DeadlineMs)
	defer cancel()
	release, ok := s.admit(ctx, w, weightCompile)
	if !ok {
		return
	}
	defer release()
	resp, err := s.translate(ctx, call)
	if err != nil {
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) translate(ctx context.Context, c *simCall) (*TranslateResponse, error) {
	cfg := s.config(ctx, c)
	tr, err := bench.TranslateWorkload(c.workload, cfg, c.policy)
	if err != nil {
		return nil, err
	}
	resp := &TranslateResponse{
		Workload:    c.req.Workload,
		Cores:       c.req.Cores,
		Scale:       c.req.Scale,
		Policy:      c.req.Policy,
		MPBBudget:   c.req.MPBBudget,
		OnChipBytes: tr.OnChipBytes,
		Source:      tr.Source,
	}
	if tr.Placement != nil {
		resp.PlacementDigest = tr.Placement.Digest()
	}
	if c.spans {
		resp.Spans = spansFrom(ctx).tree()
	}
	return resp, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	call, ok := s.decodeSim(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.withDeadline(r.Context(), call.req.DeadlineMs)
	defer cancel()
	release, ok := s.admit(ctx, w, weightSimulate)
	if !ok {
		return
	}
	defer release()
	resp, err := s.simulate(ctx, call)
	if err != nil {
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) simulate(ctx context.Context, c *simCall) (*SimulateResponse, error) {
	cfg := s.config(ctx, c)
	var rec *trace.Recorder
	if c.trace {
		// The translated (RCCE) run is never memoized, so the recorder
		// always observes this request's own simulation; the baseline
		// run may be a cache hit and is deliberately untraced.
		rec = trace.NewRecorder(nil, 0)
		cfg.TraceRCCE = rec
	}
	both, err := bench.RunBothBackends(c.workload, cfg, c.policy)
	if err != nil {
		return nil, err
	}
	resp := &SimulateResponse{
		Workload:        c.req.Workload,
		Cores:           c.req.Cores,
		Scale:           c.req.Scale,
		Policy:          c.req.Policy,
		MPBBudget:       c.req.MPBBudget,
		Engine:          c.engine.Resolve().String(),
		BaselinePs:      uint64(both.Baseline.Makespan),
		RCCEPs:          uint64(both.RCCE.Makespan),
		Speedup:         bench.Speedup(both.Baseline, both.RCCE),
		Match:           both.Match,
		OnChipBytes:     both.RCCE.OnChipBytes,
		PlacementDigest: both.RCCE.PlacementDigest,
		MPBAccesses:     both.RCCE.Stats.MPBAccesses,
		SharedAccesses:  both.RCCE.Stats.SharedAccesses,
	}
	if rec != nil {
		resp.Trace = rec.Export()
	}
	if c.spans {
		resp.Spans = spansFrom(ctx).tree()
	}
	return resp, nil
}

// validateGrid admits a grid spec under the server limits.
func (s *Server) validateGrid(g bench.Grid) error {
	if err := g.Validate(); err != nil {
		return errBadRequest("%v", err)
	}
	cells := g.Cells()
	if len(cells) > s.limits.MaxGridCells {
		return errBadRequest("grid has %d cells, limit %d", len(cells), s.limits.MaxGridCells)
	}
	scale := g.Scale
	if scale == 0 {
		scale = 1.0
	}
	if scale < 0 || scale > s.limits.MaxScale {
		return errBadRequest("scale %g out of range (0,%g]", scale, s.limits.MaxScale)
	}
	for _, n := range g.Cores {
		if n < 1 || n > s.limits.MaxCores {
			return errBadRequest("cores %d out of range [1,%d]", n, s.limits.MaxCores)
		}
	}
	for _, wk := range g.Workloads {
		if !synth.IsKey(wk) {
			continue
		}
		p, err := synth.ParseKey(wk)
		if err != nil {
			return errBadRequest("bad synth key: %v", err)
		}
		if ops := p.Scaled(scale).Ops * p.Rounds; ops > s.limits.MaxSynthOps {
			return errBadRequest("synth op budget %d exceeds limit %d", ops, s.limits.MaxSynthOps)
		}
	}
	return nil
}

func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req GridRequest
	if err := decodeJSON(r, &req); err != nil {
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return
	}
	if err := s.validateGrid(req.Grid); err != nil {
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return
	}
	ctx, cancel := s.withDeadline(r.Context(), req.DeadlineMs)
	defer cancel()
	release, ok := s.admit(ctx, w, len(req.Grid.Cells()))
	if !ok {
		return
	}
	defer release()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	started := false
	_, err := bench.RunGrid(req.Grid, bench.RunOptions{
		Parallel: req.Parallel,
		Engine:   req.Engine,
		Cache:    s.cache,
		Cancel:   ctx.Err,
		Fault:    s.fault,
		OnResult: func(res bench.CellResult) {
			// Callbacks arrive serialized in cell-index order; each line
			// is one CellResult. Once the request context has ended,
			// remaining cells are all canceled noise — suppress them and
			// let the terminal stream record below tell the story.
			if ctx.Err() != nil {
				return
			}
			started = true
			enc.Encode(res)
			if flusher != nil {
				flusher.Flush()
			}
		},
	})
	if err != nil {
		// Spec errors surface before any cell ran (Validate re-run), so
		// the stream is still clean here in practice; report and stop.
		status, msg := s.statusOf(err)
		if started {
			writeStreamError(w, status, msg)
		} else {
			writeError(w, status, msg)
		}
		return
	}
	if cerr := ctx.Err(); cerr != nil {
		// The deadline (or a drain cancel) cut the run short. If lines
		// already went out, close the stream with the terminal error
		// record so the client can tell truncation from completion;
		// otherwise the plain error envelope still fits.
		status, msg := s.statusOf(cerr)
		if started {
			writeStreamError(w, status, msg)
		} else {
			writeError(w, status, msg)
		}
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		status, msg := s.statusOf(err)
		writeError(w, status, msg)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no items")
		return
	}
	if len(req.Items) > s.limits.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d items, limit %d", len(req.Items), s.limits.MaxBatch))
		return
	}
	ctx, cancel := s.withDeadline(r.Context(), req.DeadlineMs)
	defer cancel()
	weight := 0
	for _, item := range req.Items {
		if item.Op == "simulate" {
			weight += weightSimulate
		} else {
			weight += weightCompile
		}
	}
	release, ok := s.admit(ctx, w, weight)
	if !ok {
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitter := newOrderedEmitter(len(req.Items), func(line any) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	})

	workers := req.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(req.Items) {
		workers = len(req.Items)
	}
	jobs := make(chan int)
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func() {
			for idx := range jobs {
				emitter.emit(idx, s.runBatchItemSafe(ctx, idx, req.Items[idx]))
			}
			done <- struct{}{}
		}()
	}
	for i := range req.Items {
		jobs <- i
	}
	close(jobs)
	for i := 0; i < workers; i++ {
		<-done
	}
}

// runBatchItemSafe is runBatchItem behind a panic boundary: batch items
// run on worker goroutines where the instrument-level recover cannot
// reach, so an unrecovered panic there would kill the process. Instead
// it costs exactly its item — a 500-status error line in the stream.
func (s *Server) runBatchItemSafe(ctx context.Context, idx int, item BatchItem) (line BatchLine) {
	defer func() {
		if v := recover(); v != nil {
			s.metrics.panicked()
			line = BatchLine{
				Index:  idx,
				Op:     item.Op,
				Status: http.StatusInternalServerError,
				Error:  fmt.Sprintf("panic: %v", v),
			}
		}
	}()
	return s.runBatchItem(ctx, idx, item)
}

// runBatchItem executes one batch item, mapping failures to an
// error-carrying line instead of failing the stream.
func (s *Server) runBatchItem(ctx context.Context, idx int, item BatchItem) BatchLine {
	line := BatchLine{Index: idx, Op: item.Op}
	fail := func(err error) BatchLine {
		line.Status, line.Error = s.statusOf(err)
		return line
	}
	call, err := s.resolve(&item.SimRequest)
	if err != nil {
		return fail(err)
	}
	switch item.Op {
	case "compile":
		resp, err := s.compile(ctx, call)
		if err != nil {
			return fail(err)
		}
		line.Compile = resp
	case "translate":
		resp, err := s.translate(ctx, call)
		if err != nil {
			return fail(err)
		}
		line.Translate = resp
	case "simulate":
		resp, err := s.simulate(ctx, call)
		if err != nil {
			return fail(err)
		}
		line.Simulate = resp
	default:
		return fail(errBadRequest("unknown op %q (want compile, translate or simulate)", item.Op))
	}
	return line
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	snap := s.metrics.Snapshot(s.cache.Stats(), s.gate.stats(), s.draining.Load())
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, snap)
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		renderPrometheus(w, snap)
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown metrics format %q (want json or prometheus)", format))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		// Draining: tell the load balancer to take us out of rotation
		// while in-flight work finishes.
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}
