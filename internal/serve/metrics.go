package serve

// The /metrics surface: per-endpoint request counts, status counts and
// latency histograms, the in-flight gauge, goroutine count, and the
// shared cache's stats (compute counters, hit/miss, LRU cost and
// evictions). Everything is a plain JSON document — no scrape-format
// dependency — and cheap enough to poll from the load-test harness
// after every scenario.

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"hsmcc/internal/bench"
)

// latencyBucketBoundsMs are the histogram's upper bounds; an implicit
// +Inf bucket follows the last.
var latencyBucketBoundsMs = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Metrics is the daemon's counter registry. Safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	inFlight  int
	panics    int64
	endpoints map[string]*endpointCounters
}

type endpointCounters struct {
	requests int64
	byStatus map[int]int64
	buckets  []int64 // len(latencyBucketBoundsMs)+1, last = +Inf
	// totalUs accumulates latency in microseconds: most requests on a
	// warm cache finish well under a millisecond, so a millisecond
	// accumulator would truncate nearly all of them to zero and report
	// an average of 0ms under exactly the load the cache is for.
	totalUs int64
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: make(map[string]*endpointCounters)}
}

func (m *Metrics) endpoint(name string) *endpointCounters {
	e, ok := m.endpoints[name]
	if !ok {
		e = &endpointCounters{
			byStatus: make(map[int]int64),
			buckets:  make([]int64, len(latencyBucketBoundsMs)+1),
		}
		m.endpoints[name] = e
	}
	return e
}

func (m *Metrics) requestStarted(name string) {
	m.mu.Lock()
	m.inFlight++
	m.endpoint(name).requests++
	m.mu.Unlock()
}

func (m *Metrics) requestFinished(name string, status int, d time.Duration) {
	us := d.Microseconds()
	bucket := len(latencyBucketBoundsMs)
	for i, bound := range latencyBucketBoundsMs {
		// Bucket bounds stay in milliseconds (the published histogram
		// shape); comparing in microseconds keeps sub-ms requests from
		// all rounding into the first bucket's floor.
		if us <= bound*1000 {
			bucket = i
			break
		}
	}
	m.mu.Lock()
	m.inFlight--
	e := m.endpoint(name)
	e.byStatus[status]++
	e.buckets[bucket]++
	e.totalUs += us
	m.mu.Unlock()
}

// InFlight reports the current number of requests being served.
func (m *Metrics) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inFlight
}

// panicked counts one recovered panic (handler or compute).
func (m *Metrics) panicked() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// Panics reports the recovered-panic count.
func (m *Metrics) Panics() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.panics
}

// EndpointSnapshot is one endpoint's counters at snapshot time.
type EndpointSnapshot struct {
	Requests int64 `json:"requests"`
	// ByStatus maps HTTP status to count.
	ByStatus map[int]int64 `json:"by_status"`
	// LatencyBucketMs are the histogram upper bounds (ms); the counts
	// align index-wise, with one extra final +Inf count.
	LatencyBucketMs []int64 `json:"latency_bucket_ms"`
	LatencyCounts   []int64 `json:"latency_counts"`
	AvgLatencyMs    float64 `json:"avg_latency_ms"`
}

// MetricsSnapshot is the /metrics document.
type MetricsSnapshot struct {
	UptimeMs   int64                       `json:"uptime_ms"`
	InFlight   int                         `json:"in_flight"`
	Goroutines int                         `json:"goroutines"`
	// Panics counts recovered panics (handler and compute); each cost
	// exactly one request, never the process.
	Panics int64 `json:"panics"`
	// Draining reports whether the server has begun shutting down.
	Draining bool `json:"draining"`
	// Overload is the admission gate: slot occupancy, queue depth, shed
	// count.
	Overload  OverloadSnapshot            `json:"overload"`
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	// EndpointNames is sorted, for stable iteration by text consumers.
	EndpointNames []string         `json:"endpoint_names"`
	Cache         bench.CacheStats `json:"cache"`
	CacheHitRate  float64          `json:"cache_hit_rate"`
}

// Snapshot captures the registry plus the given cache stats and
// control-plane state.
func (m *Metrics) Snapshot(cache bench.CacheStats, overload OverloadSnapshot, draining bool) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		UptimeMs:     time.Since(m.start).Milliseconds(),
		InFlight:     m.inFlight,
		Goroutines:   runtime.NumGoroutine(),
		Panics:       m.panics,
		Draining:     draining,
		Overload:     overload,
		Endpoints:    make(map[string]EndpointSnapshot, len(m.endpoints)),
		Cache:        cache,
		CacheHitRate: cache.HitRate(),
	}
	for name, e := range m.endpoints {
		es := EndpointSnapshot{
			Requests:        e.requests,
			ByStatus:        make(map[int]int64, len(e.byStatus)),
			LatencyBucketMs: latencyBucketBoundsMs,
			LatencyCounts:   append([]int64(nil), e.buckets...),
		}
		for k, v := range e.byStatus {
			es.ByStatus[k] = v
		}
		var finished int64
		for _, c := range e.buckets {
			finished += c
		}
		if finished > 0 {
			es.AvgLatencyMs = float64(e.totalUs) / 1000 / float64(finished)
		}
		snap.Endpoints[name] = es
		snap.EndpointNames = append(snap.EndpointNames, name)
	}
	sort.Strings(snap.EndpointNames)
	return snap
}
