package serve

// Overload control: the weighted in-flight admission gate. The daemon's
// shared compute capacity is a budgeted resource exactly like the
// paper's MPB — it only stays useful under an explicit budget and a
// shedding policy. The gate bounds the total weighted simulation work
// in flight (a 4096-cell grid costs more slots than one compile),
// parks a bounded FIFO of waiters when the gate is full, and sheds —
// 503 + Retry-After — when a request cannot get slots before its
// deadline or the queue is already full. Degradation is therefore
// load-shaped and explicit, never a collapse: in-flight weight can
// never exceed the configured bound (the chaos selftest asserts the
// peak), and every shed is counted in /metrics.

import (
	"container/list"
	"context"
	"net/http"
	"sync"
)

// errOverloaded and errShedDeadline are the two shed outcomes; both
// answer 503 (with Retry-After attached by Server.admit).
var (
	errOverloaded = &httpError{
		status: http.StatusServiceUnavailable,
		msg:    "overloaded: at capacity and the wait queue is full",
	}
	errShedDeadline = &httpError{
		status: http.StatusServiceUnavailable,
		msg:    "overloaded: no capacity before the request deadline",
	}
)

// gate is the weighted slot pool. Grants are strict FIFO: a heavy
// waiter at the front is never overtaken by a light one behind it, so
// grids cannot be starved by a stream of compiles.
type gate struct {
	mu       sync.Mutex
	capacity int64
	maxQueue int
	inUse    int64
	peak     int64
	waiters  *list.List // of *waiter; front = oldest
	shed     int64
}

// waiter is one parked acquire; ready is closed under gate.mu when the
// waiter's weight has been charged to the gate.
type waiter struct {
	weight int64
	ready  chan struct{}
}

func newGate(capacity int64, maxQueue int) *gate {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{capacity: capacity, maxQueue: maxQueue, waiters: list.New()}
}

// acquire charges weight slots against the gate, parking in the FIFO
// queue if the gate is full. It returns the matching release, or an
// *httpError(503) when the queue is full or ctx ends first. A weight
// larger than the whole gate is clamped to the capacity: the request
// still runs, alone.
func (g *gate) acquire(ctx context.Context, weight int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > g.capacity {
		weight = g.capacity
	}
	g.mu.Lock()
	if g.waiters.Len() == 0 && g.inUse+weight <= g.capacity {
		g.grantLocked(weight)
		g.mu.Unlock()
		return func() { g.release(weight) }, nil
	}
	if g.waiters.Len() >= g.maxQueue {
		g.shed++
		g.mu.Unlock()
		return nil, errOverloaded
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := g.waiters.PushBack(w)
	g.mu.Unlock()
	select {
	case <-w.ready:
		return func() { g.release(weight) }, nil
	case <-ctx.Done():
		g.mu.Lock()
		granted := false
		select {
		case <-w.ready:
			// A release granted us concurrently with the deadline; the
			// charge is ours to refund.
			granted = true
		default:
			g.waiters.Remove(elem)
		}
		g.shed++
		g.mu.Unlock()
		if granted {
			g.release(weight)
		}
		return nil, errShedDeadline
	}
}

// grantLocked charges weight and tracks the high-water mark (the chaos
// selftest's "in-flight never exceeds the bound" witness).
func (g *gate) grantLocked(weight int64) {
	g.inUse += weight
	if g.inUse > g.peak {
		g.peak = g.inUse
	}
}

// release refunds weight and wakes queued waiters front-first while
// they fit.
func (g *gate) release(weight int64) {
	g.mu.Lock()
	g.inUse -= weight
	for g.waiters.Len() > 0 {
		front := g.waiters.Front()
		w := front.Value.(*waiter)
		if g.inUse+w.weight > g.capacity {
			break
		}
		g.waiters.Remove(front)
		g.grantLocked(w.weight)
		close(w.ready)
	}
	g.mu.Unlock()
}

// OverloadSnapshot is the gate's /metrics view.
type OverloadSnapshot struct {
	// SlotCapacity is the configured weighted in-flight bound
	// (Limits.MaxInFlight).
	SlotCapacity int64 `json:"slot_capacity"`
	// SlotsInUse is the weighted work currently holding slots.
	SlotsInUse int64 `json:"slots_in_use"`
	// PeakInUse is the high-water mark of SlotsInUse; by construction it
	// never exceeds SlotCapacity.
	PeakInUse int64 `json:"peak_in_use"`
	// QueueDepth / MaxQueue describe the admission wait queue.
	QueueDepth int `json:"queue_depth"`
	MaxQueue   int `json:"max_queue"`
	// Shed counts requests answered 503: queue overflow plus deadline
	// expiries while queued.
	Shed int64 `json:"shed"`
}

func (g *gate) stats() OverloadSnapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	return OverloadSnapshot{
		SlotCapacity: g.capacity,
		SlotsInUse:   g.inUse,
		PeakInUse:    g.peak,
		QueueDepth:   g.waiters.Len(),
		MaxQueue:     g.maxQueue,
		Shed:         g.shed,
	}
}
