package serve

// orderedEmitter sequences concurrent workers' results into input
// order: emit(i, v) may arrive in any order, the sink sees 0,1,2,...
// with callbacks serialized — the same reorder-buffer discipline as
// bench.RunGrid's OnResult, here for the batch endpoint's mixed lines.

import "sync"

type orderedEmitter struct {
	mu    sync.Mutex
	sink  func(any)
	lines []any
	ready []bool
	next  int
}

func newOrderedEmitter(n int, sink func(any)) *orderedEmitter {
	return &orderedEmitter{sink: sink, lines: make([]any, n), ready: make([]bool, n)}
}

func (e *orderedEmitter) emit(i int, v any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lines[i] = v
	e.ready[i] = true
	for e.next < len(e.lines) && e.ready[e.next] {
		e.sink(e.lines[e.next])
		e.lines[e.next] = nil
		e.next++
	}
}
