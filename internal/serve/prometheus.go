package serve

// Prometheus text exposition (format version 0.0.4) of the metrics
// snapshot: GET /metrics?format=prometheus. The renderer is a pure
// function of a MetricsSnapshot value — given the same snapshot it
// writes the same bytes (endpoint names and status codes are sorted) —
// so both formats golden-test against handcrafted snapshots. The JSON
// document stays the default; this surface exists for scrapers.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal form.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func promBool(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// writePromMetric emits one # HELP / # TYPE header pair followed by the
// sample lines the caller appends.
func promHeader(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// renderPrometheus writes snap in the Prometheus text exposition
// format.
func renderPrometheus(w io.Writer, snap MetricsSnapshot) {
	promHeader(w, "hsmccd_uptime_seconds", "gauge", "Seconds since the daemon started.")
	fmt.Fprintf(w, "hsmccd_uptime_seconds %s\n", promFloat(float64(snap.UptimeMs)/1000))

	promHeader(w, "hsmccd_in_flight", "gauge", "Requests currently being served.")
	fmt.Fprintf(w, "hsmccd_in_flight %d\n", snap.InFlight)

	promHeader(w, "hsmccd_goroutines", "gauge", "Goroutines in the process.")
	fmt.Fprintf(w, "hsmccd_goroutines %d\n", snap.Goroutines)

	promHeader(w, "hsmccd_panics_total", "counter", "Recovered panics (handler and compute); each cost one request.")
	fmt.Fprintf(w, "hsmccd_panics_total %d\n", snap.Panics)

	promHeader(w, "hsmccd_draining", "gauge", "1 while the daemon is draining for shutdown.")
	fmt.Fprintf(w, "hsmccd_draining %s\n", promBool(snap.Draining))

	promHeader(w, "hsmccd_overload_slot_capacity", "gauge", "Weighted in-flight work bound of the admission gate.")
	fmt.Fprintf(w, "hsmccd_overload_slot_capacity %d\n", snap.Overload.SlotCapacity)
	promHeader(w, "hsmccd_overload_slots_in_use", "gauge", "Weighted work currently holding admission slots.")
	fmt.Fprintf(w, "hsmccd_overload_slots_in_use %d\n", snap.Overload.SlotsInUse)
	promHeader(w, "hsmccd_overload_peak_in_use", "gauge", "High-water mark of weighted slots in use.")
	fmt.Fprintf(w, "hsmccd_overload_peak_in_use %d\n", snap.Overload.PeakInUse)
	promHeader(w, "hsmccd_overload_queue_depth", "gauge", "Requests waiting in the admission queue.")
	fmt.Fprintf(w, "hsmccd_overload_queue_depth %d\n", snap.Overload.QueueDepth)
	promHeader(w, "hsmccd_overload_max_queue", "gauge", "Admission queue depth bound.")
	fmt.Fprintf(w, "hsmccd_overload_max_queue %d\n", snap.Overload.MaxQueue)
	promHeader(w, "hsmccd_overload_shed_total", "counter", "Requests shed (503) by the admission gate.")
	fmt.Fprintf(w, "hsmccd_overload_shed_total %d\n", snap.Overload.Shed)

	promHeader(w, "hsmccd_requests_total", "counter", "Requests accepted, by endpoint.")
	for _, name := range snap.EndpointNames {
		fmt.Fprintf(w, "hsmccd_requests_total{endpoint=%q} %d\n", name, snap.Endpoints[name].Requests)
	}

	promHeader(w, "hsmccd_responses_total", "counter", "Responses written, by endpoint and HTTP status code.")
	for _, name := range snap.EndpointNames {
		e := snap.Endpoints[name]
		codes := make([]int, 0, len(e.ByStatus))
		for code := range e.ByStatus {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "hsmccd_responses_total{endpoint=%q,code=\"%d\"} %d\n", name, code, e.ByStatus[code])
		}
	}

	promHeader(w, "hsmccd_request_duration_seconds", "histogram", "Request latency, by endpoint.")
	for _, name := range snap.EndpointNames {
		e := snap.Endpoints[name]
		// The snapshot's per-bucket counts become the cumulative counts
		// Prometheus histograms carry.
		var cum int64
		for i, bound := range e.LatencyBucketMs {
			cum += e.LatencyCounts[i]
			fmt.Fprintf(w, "hsmccd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, promFloat(float64(bound)/1000), cum)
		}
		cum += e.LatencyCounts[len(e.LatencyCounts)-1]
		fmt.Fprintf(w, "hsmccd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "hsmccd_request_duration_seconds_sum{endpoint=%q} %s\n",
			name, promFloat(e.AvgLatencyMs/1000*float64(cum)))
		fmt.Fprintf(w, "hsmccd_request_duration_seconds_count{endpoint=%q} %d\n", name, cum)
	}

	promHeader(w, "hsmccd_cache_program_compiles_total", "counter", "Pthread program compilations executed by the shared cache.")
	fmt.Fprintf(w, "hsmccd_cache_program_compiles_total %d\n", snap.Cache.ProgramCompiles)
	promHeader(w, "hsmccd_cache_translate_runs_total", "counter", "Translation runs executed by the shared cache.")
	fmt.Fprintf(w, "hsmccd_cache_translate_runs_total %d\n", snap.Cache.TranslateRuns)
	promHeader(w, "hsmccd_cache_baseline_runs_total", "counter", "Baseline simulations executed by the shared cache.")
	fmt.Fprintf(w, "hsmccd_cache_baseline_runs_total %d\n", snap.Cache.BaselineRuns)
	promHeader(w, "hsmccd_cache_profile_runs_total", "counter", "Profiling passes executed by the shared cache.")
	fmt.Fprintf(w, "hsmccd_cache_profile_runs_total %d\n", snap.Cache.ProfileRuns)
	promHeader(w, "hsmccd_cache_hits_total", "counter", "Cache lookups answered from memory.")
	fmt.Fprintf(w, "hsmccd_cache_hits_total %d\n", snap.Cache.Hits)
	promHeader(w, "hsmccd_cache_misses_total", "counter", "Cache lookups that had to compute.")
	fmt.Fprintf(w, "hsmccd_cache_misses_total %d\n", snap.Cache.Misses)
	promHeader(w, "hsmccd_cache_entries", "gauge", "Live cache entries.")
	fmt.Fprintf(w, "hsmccd_cache_entries %d\n", snap.Cache.Entries)
	promHeader(w, "hsmccd_cache_cost_bytes", "gauge", "Estimated resident bytes held by the cache.")
	fmt.Fprintf(w, "hsmccd_cache_cost_bytes %d\n", snap.Cache.CostBytes)
	promHeader(w, "hsmccd_cache_max_cost_bytes", "gauge", "Cache budget in estimated resident bytes (0 = unbounded).")
	fmt.Fprintf(w, "hsmccd_cache_max_cost_bytes %d\n", snap.Cache.MaxCostBytes)
	promHeader(w, "hsmccd_cache_evictions_total", "counter", "Entries evicted by the LRU budget.")
	fmt.Fprintf(w, "hsmccd_cache_evictions_total %d\n", snap.Cache.Evictions)
	promHeader(w, "hsmccd_cache_hit_rate", "gauge", "Hits over lookups, 0 when no lookups happened.")
	fmt.Fprintf(w, "hsmccd_cache_hit_rate %s\n", promFloat(snap.CacheHitRate))
}
