package serve

// FuzzServeRequest hammers the daemon's admission surface — the JSON
// request decoder, the limit checks and the synth-key parser behind
// them — with arbitrary bodies. The property is total: any input either
// resolves or returns an error; nothing panics, and a synth key that
// parses must round-trip through its canonical re-encoding. No
// simulations run here (decode/resolve only), so the fuzzer gets
// millions of executions, not dozens.

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"hsmcc/internal/synth"
)

func FuzzServeRequest(f *testing.F) {
	for _, tc := range goldenCases() {
		if tc.method != "POST" {
			continue
		}
		var sel uint8
		switch tc.path {
		case "/v1/grid":
			sel = 1
		case "/v1/batch":
			sel = 2
		}
		f.Add(sel, []byte(tc.body))
	}
	f.Add(uint8(0), []byte(`{"workload":"synth:s1:o24:m0.5:l1:h0:d2:a8:p8:r1:kf","cores":3,"scale":0.5}`))
	f.Add(uint8(0), []byte(`{"workload":"synth:s-1:o0:m2:l-1:h1e308:d0:a0:p0:r0:kx"}`))
	f.Add(uint8(1), []byte(`{"grid":{"workloads":["synth:"],"cores":[0],"policies":[""]}}`))

	s := New(Options{})
	f.Fuzz(func(t *testing.T, sel uint8, body []byte) {
		r := httptest.NewRequest("POST", "/v1/x", bytes.NewReader(body))
		switch sel % 3 {
		case 0:
			var req SimRequest
			if err := decodeJSON(r, &req); err != nil {
				return
			}
			workload := req.Workload
			if _, err := s.resolve(&req); err == nil && synth.IsKey(workload) {
				// Admitted synth keys must round-trip: parse, re-encode,
				// re-parse to the same vector.
				p, err := synth.ParseKey(workload)
				if err != nil {
					t.Fatalf("resolve admitted unparseable synth key %q: %v", workload, err)
				}
				p2, err := synth.ParseKey(p.Key())
				if err != nil || p2 != p {
					t.Fatalf("synth key %q does not round-trip: %+v vs %+v (%v)", workload, p, p2, err)
				}
			}
		case 1:
			var req GridRequest
			if err := decodeJSON(r, &req); err != nil {
				return
			}
			s.validateGrid(req.Grid)
		case 2:
			var req BatchRequest
			if err := decodeJSON(r, &req); err != nil {
				return
			}
			for i := range req.Items {
				s.resolve(&req.Items[i].SimRequest)
			}
		}
	})
}
