package loadtest

import (
	"runtime"
	"testing"

	"hsmcc/internal/serve/chaos"
)

// TestChaosRun is the fault-injection harness in CI-sized form: a
// seeded mixed scenario against a server with an active injector and a
// small slot bound. The gates are the tentpole's: zero divergences
// among successful responses, in-flight never above the slot bound, no
// goroutine leak, and the drain check completes.
func TestChaosRun(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 50
	}
	plan := chaos.DefaultPlan(11)
	rep, err := Run(Options{Seed: 11, Requests: n, Concurrency: 16, Chaos: &plan})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Chaos == nil {
		t.Fatal("chaos run produced no chaos report")
	}
	if rep.Chaos.Faults.Injected() == 0 {
		t.Fatal("injector fired no faults — the chaos plan is not wired through")
	}
	if rep.StatusCounts[200] == 0 {
		t.Fatal("no request succeeded under chaos")
	}
}

// TestMixedLoadZeroDivergence is the core acceptance check in CI-sized
// form: a seeded mixed scenario (hot simulates, fresh compiles, synth
// sweeps, grids, batches, doomed and hostile requests) run concurrently
// against a live daemon, every deterministic response compared
// byte-for-byte with direct in-process bench runs.
func TestMixedLoadZeroDivergence(t *testing.T) {
	n := 160
	if testing.Short() {
		n = 60
	}
	rep, err := Run(Options{Seed: 1, Requests: n, Concurrency: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.StatusCounts[200] == 0 {
		t.Fatal("no request succeeded — the scenario is not exercising the daemon")
	}
}

// TestCacheHotHitRate checks the acceptance bound: a cache-hot scenario
// (a small pool of repeated requests) must see >50% cache hits.
func TestCacheHotHitRate(t *testing.T) {
	rep, err := Run(Options{Seed: 2, Requests: 80, Concurrency: 8, HotOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.CacheHitRate <= 0.5 {
		t.Fatalf("cache-hot hit rate %.2f, want > 0.5 (stats: %+v)", rep.CacheHitRate, rep.Cache)
	}
}

// TestGenerateDeterministic pins the scenario generator: same seed,
// same plan, byte for byte — the property that makes load-test failures
// reproducible from the seed alone.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Options{Seed: 7, Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Options{Seed: 7, Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.Kind != rb.Kind || ra.Path != rb.Path || string(ra.Body) != string(rb.Body) {
			t.Fatalf("request %d differs:\n%s %s %s\n%s %s %s",
				i, ra.Kind, ra.Path, ra.Body, rb.Kind, rb.Path, rb.Body)
		}
	}
	c, err := Generate(Options{Seed: 8, Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Requests {
		if string(a.Requests[i].Body) != string(c.Requests[i].Body) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 generated identical plans — the seed is not wired through")
	}
}

// TestScalingThroughput is the GOMAXPROCS study: throughput at 4 procs
// must beat 1 proc. Skipped in -short runs (it runs the scenario three
// times).
func TestScalingThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling study runs the scenario at three GOMAXPROCS settings")
	}
	procs := ScalingProcs()
	if len(procs) < 2 {
		t.Skipf("scaling needs >=2 CPUs, have %d — GOMAXPROCS beyond the core count adds no parallelism", runtime.NumCPU())
	}
	points, err := RunScaling(Options{Seed: 3, Requests: 120, Concurrency: 16}, procs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		t.Logf("GOMAXPROCS %d: %.1f req/s (%d ms)", p.Procs, p.Throughput, p.DurationMs)
	}
	if err := CheckScaling(points); err != nil {
		t.Fatal(err)
	}
}
