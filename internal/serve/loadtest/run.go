package loadtest

// The concurrent driver: fire a resolved Plan at a live server from
// Concurrency goroutines, compare every response against the oracle's
// expected bytes, and audit the process afterwards (goroutines back to
// baseline, heap bounded, cache stats sane).

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hsmcc/internal/serve"
	"hsmcc/internal/serve/chaos"
)

// RequestIDPattern is the shape every X-Request-Id header must match:
// an 8-hex-digit process prefix, a dash, a decimal sequence number.
var RequestIDPattern = regexp.MustCompile(`^[0-9a-f]{8}-[0-9]+$`)

// Run generates a scenario from opts, resolves the in-process oracle,
// serves an hsmccd instance over a loopback listener, drives the full
// concurrent mix against it, and returns the report. The server is torn
// down before the goroutine audit so lingering handlers count as leaks.
//
// With opts.Chaos set, the server runs with the seeded fault injector
// and a deliberately small slot bound, the driver retries injected
// failures and sheds, and the report gains the ChaosReport audit —
// including the post-traffic drain check.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan, err := Generate(opts)
	if err != nil {
		return nil, err
	}
	if err := plan.Resolve(); err != nil {
		return nil, err
	}
	// Let the oracle's own allocations settle before taking the
	// goroutine/heap baseline.
	g0 := SettleGoroutines(runtime.NumGoroutine(), time.Second)

	srvOpts := serve.Options{}
	var injector *chaos.Injector
	if opts.Chaos != nil {
		injector = chaos.New(*opts.Chaos)
		srvOpts.Fault = injector.Fault
		srvOpts.Limits = serve.Limits{
			MaxInFlight: opts.SlotBound,
			MaxQueue:    opts.QueueBound,
		}
	}
	srv := serve.New(srvOpts)
	ts := httptest.NewServer(srv.Handler())
	rep, err := Execute(plan, ts.URL, ts.Client())
	if err == nil && opts.Chaos != nil {
		auditChaos(rep.Chaos, srv, ts, injector, opts)
	}
	ts.Client().CloseIdleConnections()
	ts.Close()
	if err != nil {
		return nil, err
	}

	rep.Scenario = "mixed"
	if opts.HotOnly {
		rep.Scenario = "cache-hot"
	}
	if opts.Chaos != nil {
		rep.Scenario = "chaos"
	}
	rep.Cache = srv.Cache().Stats()
	rep.CacheHitRate = rep.Cache.HitRate()
	rep.GoroutinesStart = g0
	rep.GoroutinesEnd = SettleGoroutines(g0, 5*time.Second)
	rep.HeapAllocMB = memSnapshotMB()
	return rep, nil
}

// auditChaos fills the chaos report after the traffic phase: injector
// and gate counters, then the drain check — park one slow request on
// the server, StartDrain, verify /healthz reports draining and new
// work is refused, CancelInFlight, and confirm the parked request is
// cut off promptly. cr already carries Execute's client-side counters
// (retries, gave-ups).
func auditChaos(cr *ChaosReport, srv *serve.Server, ts *httptest.Server, injector *chaos.Injector, opts Options) {
	cr.Seed = opts.Chaos.Seed
	cr.Faults = injector.Stats()
	cr.SlotBound = int64(srv.Limits().MaxInFlight)
	cr.Panics = srv.Metrics().Panics()

	start := time.Now()
	cr.DrainOK = checkDrain(srv, ts)
	cr.DrainMs = time.Since(start).Milliseconds()

	// Snapshot the gate after the drain check so its slow request is
	// included in the high-water mark audit.
	ov := srv.Overload()
	cr.PeakInFlight = ov.PeakInUse
	cr.Shed = ov.Shed
}

// checkDrain exercises the drain lifecycle against a live server.
func checkDrain(srv *serve.Server, ts *httptest.Server) bool {
	// Park a slow request (long deadline, heavy work) so the drain has
	// something in flight to cut off.
	slow := []byte(`{"workload":"lu","cores":8,"scale":0.5,"deadline_ms":30000}`)
	done := make(chan int, 1)
	go func() {
		status, _, err := post(ts.Client(), ts.URL+"/v1/simulate", slow)
		if err != nil {
			status = -1
		}
		done <- status
	}()
	// Give the request a beat to reach the simulation.
	time.Sleep(50 * time.Millisecond)

	srv.StartDrain()
	status, body, err := get(ts.Client(), ts.URL+"/healthz")
	if err != nil || status != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("draining")) {
		return false
	}
	status, _, err = post(ts.Client(), ts.URL+"/v1/compile", []byte(`{"workload":"pi"}`))
	if err != nil || status != http.StatusServiceUnavailable {
		return false
	}

	// Drain deadline "expires": cut the in-flight request off. It must
	// come back promptly (canceled through interp.Sim.Cancel — usually
	// 504, or whatever an injected fault already answered if chaos got
	// there first); a request that never returns is a failed drain.
	srv.CancelInFlight()
	select {
	case status := <-done:
		return status >= 200
	case <-time.After(10 * time.Second):
		return false
	}
}

// get fetches one URL and reads the whole response.
func get(client *http.Client, url string) (int, []byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// Execute drives an already-resolved plan against a server at baseURL.
// It does not audit goroutines or cache stats — Run wraps it with the
// process-level checks; tests can call it directly against their own
// server.
func Execute(plan *Plan, baseURL string, client *http.Client) (*Report, error) {
	opts := plan.Opts.withDefaults()
	rep := &Report{
		Seed:         opts.Seed,
		Requests:     len(plan.Requests),
		Concurrency:  opts.Concurrency,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		StatusCounts: make(map[int]int64),
		KindCounts:   make(map[Kind]int64),
	}
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, len(plan.Requests))
	record := func(r *Request, status int, div *Divergence, lat time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		rep.StatusCounts[status]++
		rep.KindCounts[r.Kind]++
		latencies = append(latencies, lat)
		if div != nil {
			rep.DivergenceCount++
			if len(rep.Divergences) < maxDivergenceDetail {
				rep.Divergences = append(rep.Divergences, *div)
			}
		}
	}

	chaosMode := opts.Chaos != nil
	var retries, gaveUp int64
	jobs := make(chan *Request)
	var wg sync.WaitGroup
	errs := make(chan error, opts.Concurrency)
	start := time.Now()
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Per-worker jitter source: retry backoff needs no global
			// determinism, only independence between workers.
			rng := rand.New(rand.NewSource(opts.Seed ^ int64(worker)<<32))
			for r := range jobs {
				t0 := time.Now()
				status, body, hdr, err := postRetry(client, baseURL+r.Path, r.Body, chaosMode, rng, &retries)
				lat := time.Since(t0)
				if err != nil {
					select {
					case errs <- fmt.Errorf("loadtest: %s: %w", r.Path, err):
					default:
					}
					return
				}
				if !RequestIDPattern.MatchString(hdr.Get("X-Request-Id")) {
					atomic.AddInt64(&rep.BadRequestIDs, 1)
				}
				div := check(r, status, body, chaosMode)
				if div == nil && chaosMode && r.ExpectStatus == 200 && status != http.StatusOK {
					// A chaos-marked failure survived the retry budget:
					// allowed (the correctness gate covers successes), but
					// audited.
					atomic.AddInt64(&gaveUp, 1)
				}
				record(r, status, div, lat)
			}
		}(i)
	}
	for i := range plan.Requests {
		jobs <- &plan.Requests[i]
	}
	close(jobs)
	wg.Wait()
	rep.DurationMs = time.Since(start).Milliseconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		rep.Throughput = float64(rep.Requests) / sec
	}
	rep.LatencyP50Ms = percentileMs(latencies, 50)
	rep.LatencyP95Ms = percentileMs(latencies, 95)
	rep.LatencyP99Ms = percentileMs(latencies, 99)
	if chaosMode {
		rep.Chaos = &ChaosReport{Retries: retries, GaveUp: gaveUp}
	}
	return rep, nil
}

// percentileMs is the nearest-rank p-th percentile of ds, in
// milliseconds. Sorts a copy; 0 when ds is empty.
func percentileMs(ds []time.Duration, p int) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return float64(sorted[rank-1].Microseconds()) / 1000
}

// maxRetries bounds the retrying client's attempts per request.
const maxRetries = 8

// postRetry is the jittered-exponential-backoff retrying client. Shed
// responses (503) are always retried honoring Retry-After; in chaos
// mode, 500/504 responses carrying the "chaos:" injection marker are
// retried too (an injected fault is transient by construction — the
// poisoned cache entry was dropped, so a retry recomputes). Genuine
// failures (unmarked 500s, deterministic 504s, 400s) return
// immediately.
func postRetry(client *http.Client, url string, body []byte, chaosMode bool, rng *rand.Rand, retriesTotal *int64) (int, []byte, http.Header, error) {
	backoff := 5 * time.Millisecond
	for attempt := 0; ; attempt++ {
		status, b, hdr, err := postHdr(client, url, body)
		if err != nil {
			return 0, nil, nil, err
		}
		retryable := status == http.StatusServiceUnavailable ||
			(chaosMode &&
				(status == http.StatusInternalServerError || status == http.StatusGatewayTimeout) &&
				bytes.Contains(b, []byte("chaos:")))
		if !retryable || attempt >= maxRetries {
			return status, b, hdr, nil
		}
		atomic.AddInt64(retriesTotal, 1)
		wait := backoff + time.Duration(rng.Int63n(int64(backoff)))
		if ra := hdr.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				if raWait := time.Duration(secs) * time.Second; raWait > wait {
					wait = raWait
				}
			}
		}
		time.Sleep(wait)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// postHdr sends one request and reads the whole response plus headers.
func postHdr(client *http.Client, url string, body []byte) (int, []byte, http.Header, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, b, resp.Header, nil
}

// post sends one request and reads the whole response.
func post(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// check compares one response against the plan's expectation; nil means
// the response matched (or, in chaos mode, failed in an explicitly
// injected way). The invariant under chaos is one-sided: a fault may
// turn a success into a marked failure, but every response that IS a
// success must still be byte-faithful to the direct-run oracle.
func check(r *Request, status int, body []byte, chaosMode bool) *Divergence {
	if r.ExpectStatus == 0 {
		// Deadline-doomed: the request must either finish (a warm cache
		// can beat even a 1 ms budget), time out cleanly, or be shed by
		// the admission gate before its deadline — any other status is a
		// bug. The body is unchecked: the oracle does not spend the
		// simulation time these requests are designed to abort.
		switch status {
		case http.StatusOK, http.StatusGatewayTimeout, http.StatusServiceUnavailable:
			return nil
		}
		return &Divergence{Kind: r.Kind, Path: r.Path,
			Detail: fmt.Sprintf("status %d, want 200, 503 or 504: %s", status, truncate(string(body), 200))}
	}
	if status != r.ExpectStatus {
		if chaosMode && chaosFinal(status, body) {
			// The retry budget ran out on an injected fault (or a shed
			// that never cleared): not a correctness divergence.
			return nil
		}
		return &Divergence{Kind: r.Kind, Path: r.Path,
			Detail: fmt.Sprintf("status %d, want %d: %s", status, r.ExpectStatus, truncate(string(body), 200))}
	}
	if r.ExpectBody != nil && !bytes.Equal(body, r.ExpectBody) {
		if chaosMode && r.ExpectBody[0] == '{' && bytes.Contains(r.ExpectBody, []byte("\n{")) {
			// Multi-line NDJSON stream: chaos faults legitimately turn
			// individual lines into error-marked variants.
			return checkChaosStream(r, body)
		}
		if chaosMode && bytes.Contains(body, []byte(`"stream_error"`)) {
			return checkChaosStream(r, body)
		}
		return &Divergence{Kind: r.Kind, Path: r.Path,
			Detail: fmt.Sprintf("body diverges from direct run:\n got: %s\nwant: %s",
				truncate(string(body), 400), truncate(string(r.ExpectBody), 400))}
	}
	return nil
}

// chaosFinal reports whether a final (post-retry) failure status is an
// allowed chaos outcome: a shed, or a 500/504 carrying the injection
// marker.
func chaosFinal(status int, body []byte) bool {
	if status == http.StatusServiceUnavailable {
		return true
	}
	return (status == http.StatusInternalServerError || status == http.StatusGatewayTimeout) &&
		bytes.Contains(body, []byte("chaos:"))
}

// checkChaosStream compares an NDJSON stream line-wise against the
// oracle under chaos rules: every line must either byte-match the
// oracle's line at the same index or be an error-marked variant caused
// by an injected fault; the stream may end early only with a terminal
// stream_error record. Anything else — silent truncation, an unmarked
// differing line — is a divergence.
func checkChaosStream(r *Request, body []byte) *Divergence {
	div := func(format string, args ...any) *Divergence {
		return &Divergence{Kind: r.Kind, Path: r.Path, Detail: fmt.Sprintf(format, args...)}
	}
	got := splitLines(body)
	want := splitLines(r.ExpectBody)
	terminal := false
	if n := len(got); n > 0 && bytes.Contains(got[n-1], []byte(`"stream_error"`)) {
		terminal = true
		got = got[:n-1]
	}
	if len(got) > len(want) {
		return div("stream has %d lines, oracle %d", len(got), len(want))
	}
	if len(got) < len(want) && !terminal {
		return div("stream truncated at line %d of %d without a terminal stream_error record", len(got), len(want))
	}
	for i := range got {
		if bytes.Equal(got[i], want[i]) {
			continue
		}
		if bytes.Contains(got[i], []byte("chaos:")) {
			continue
		}
		return div("line %d diverges without a chaos marker:\n got: %s\nwant: %s",
			i, truncate(string(got[i]), 300), truncate(string(want[i]), 300))
	}
	return nil
}

// splitLines splits an NDJSON body into its non-empty lines.
func splitLines(b []byte) [][]byte {
	var lines [][]byte
	for _, l := range bytes.Split(b, []byte("\n")) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return lines
}

// Err distils a report into pass/fail: divergences, a goroutine leak,
// a slot-bound violation or a failed drain check fail the scenario.
func (r *Report) Err() error {
	if r.DivergenceCount > 0 {
		detail := ""
		if len(r.Divergences) > 0 {
			detail = ": " + r.Divergences[0].Detail
		}
		return fmt.Errorf("loadtest: %d of %d responses diverged from direct in-process runs%s",
			r.DivergenceCount, r.Requests, detail)
	}
	if r.BadRequestIDs > 0 {
		return fmt.Errorf("loadtest: %d responses had a missing or malformed X-Request-Id (want %s)",
			r.BadRequestIDs, RequestIDPattern)
	}
	// Allow a tiny slack over the pre-serve baseline: runtime helper
	// goroutines (GC workers, timer scavenger) come and go.
	if r.GoroutinesEnd > r.GoroutinesStart+3 {
		return fmt.Errorf("loadtest: goroutine leak: %d before serving, %d after drain",
			r.GoroutinesStart, r.GoroutinesEnd)
	}
	if c := r.Chaos; c != nil {
		if c.PeakInFlight > c.SlotBound {
			return fmt.Errorf("loadtest: in-flight weight peaked at %d, above the slot bound %d",
				c.PeakInFlight, c.SlotBound)
		}
		if !c.DrainOK {
			return fmt.Errorf("loadtest: drain check failed (healthz/refusal/cancel sequence)")
		}
	}
	return nil
}

// String renders the one-line summary the selftest prints per scenario.
func (r *Report) String() string {
	s := fmt.Sprintf("%s: %d reqs x%d conc (GOMAXPROCS %d) in %dms = %.1f req/s; p50/p95/p99 %.1f/%.1f/%.1f ms; status%s; hit rate %.0f%%; divergences %d; bad request IDs %d; goroutines %d->%d; heap %.1f MB",
		r.Scenario, r.Requests, r.Concurrency, r.GOMAXPROCS, r.DurationMs, r.Throughput,
		r.LatencyP50Ms, r.LatencyP95Ms, r.LatencyP99Ms,
		sortedStatuses(r.StatusCounts), 100*r.CacheHitRate, r.DivergenceCount,
		r.BadRequestIDs, r.GoroutinesStart, r.GoroutinesEnd, r.HeapAllocMB)
	if c := r.Chaos; c != nil {
		s += fmt.Sprintf("; chaos seed %d: %d injected (%d panics, %d delays, %d cancels) over %d visits, %d retries, %d gave up, peak in-flight %d/%d, shed %d, server panics %d, drain ok=%v in %dms",
			c.Seed, c.Faults.Injected(), c.Faults.Panics, c.Faults.Delays, c.Faults.Cancels,
			c.Faults.Visits, c.Retries, c.GaveUp, c.PeakInFlight, c.SlotBound, c.Shed,
			c.Panics, c.DrainOK, c.DrainMs)
	}
	return s
}

// ScalingPoint is one GOMAXPROCS measurement of the scaling study.
type ScalingPoint struct {
	Procs      int     `json:"procs"`
	Throughput float64 `json:"throughput_rps"`
	DurationMs int64   `json:"duration_ms"`
}

// RunScaling measures throughput of the same scenario at each
// GOMAXPROCS setting (fresh server and cold cache per point, no doomed
// requests — pure throughput). GOMAXPROCS is restored on return.
func RunScaling(opts Options, procs []int) ([]ScalingPoint, error) {
	opts = opts.withDefaults()
	opts.NoDoomed = true
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	points := make([]ScalingPoint, 0, len(procs))
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		rep, err := Run(opts)
		if err != nil {
			return points, err
		}
		if err := rep.Err(); err != nil {
			return points, fmt.Errorf("at GOMAXPROCS %d: %w", p, err)
		}
		points = append(points, ScalingPoint{Procs: p, Throughput: rep.Throughput, DurationMs: rep.DurationMs})
	}
	return points, nil
}

// ScalingProcs returns the GOMAXPROCS ladder the host can genuinely
// test: {1, 2, 4} truncated to the CPU count (running more procs than
// cores adds scheduler churn, not parallelism). On a single-CPU host
// the ladder has one rung and the study is vacuous — callers skip.
func ScalingProcs() []int {
	procs := []int{1}
	for _, p := range []int{2, 4} {
		if runtime.NumCPU() >= p {
			procs = append(procs, p)
		}
	}
	return procs
}

// CheckScaling asserts the acceptance property: throughput at the
// highest core count beats the single-core point (the daemon actually
// uses added parallelism). Intermediate points may jitter; the
// endpoints must not.
func CheckScaling(points []ScalingPoint) error {
	if len(points) < 2 {
		return fmt.Errorf("loadtest: scaling study needs at least 2 points, got %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.Throughput <= first.Throughput {
		return fmt.Errorf("loadtest: throughput did not scale: %.1f req/s at GOMAXPROCS %d vs %.1f req/s at %d",
			first.Throughput, first.Procs, last.Throughput, last.Procs)
	}
	return nil
}
