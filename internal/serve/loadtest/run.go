package loadtest

// The concurrent driver: fire a resolved Plan at a live server from
// Concurrency goroutines, compare every response against the oracle's
// expected bytes, and audit the process afterwards (goroutines back to
// baseline, heap bounded, cache stats sane).

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"hsmcc/internal/serve"
)

// Run generates a scenario from opts, resolves the in-process oracle,
// serves an hsmccd instance over a loopback listener, drives the full
// concurrent mix against it, and returns the report. The server is torn
// down before the goroutine audit so lingering handlers count as leaks.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	plan := Generate(opts)
	if err := plan.Resolve(); err != nil {
		return nil, err
	}
	// Let the oracle's own allocations settle before taking the
	// goroutine/heap baseline.
	g0 := SettleGoroutines(runtime.NumGoroutine(), time.Second)

	srv := serve.New(serve.Options{})
	ts := httptest.NewServer(srv.Handler())
	rep, err := Execute(plan, ts.URL, ts.Client())
	ts.Client().CloseIdleConnections()
	ts.Close()
	if err != nil {
		return nil, err
	}

	rep.Scenario = "mixed"
	if opts.HotOnly {
		rep.Scenario = "cache-hot"
	}
	rep.Cache = srv.Cache().Stats()
	rep.CacheHitRate = rep.Cache.HitRate()
	rep.GoroutinesStart = g0
	rep.GoroutinesEnd = SettleGoroutines(g0, 5*time.Second)
	rep.HeapAllocMB = memSnapshotMB()
	return rep, nil
}

// Execute drives an already-resolved plan against a server at baseURL.
// It does not audit goroutines or cache stats — Run wraps it with the
// process-level checks; tests can call it directly against their own
// server.
func Execute(plan *Plan, baseURL string, client *http.Client) (*Report, error) {
	opts := plan.Opts.withDefaults()
	rep := &Report{
		Seed:         opts.Seed,
		Requests:     len(plan.Requests),
		Concurrency:  opts.Concurrency,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		StatusCounts: make(map[int]int64),
		KindCounts:   make(map[Kind]int64),
	}
	var mu sync.Mutex
	record := func(r *Request, status int, div *Divergence) {
		mu.Lock()
		defer mu.Unlock()
		rep.StatusCounts[status]++
		rep.KindCounts[r.Kind]++
		if div != nil {
			rep.DivergenceCount++
			if len(rep.Divergences) < maxDivergenceDetail {
				rep.Divergences = append(rep.Divergences, *div)
			}
		}
	}

	jobs := make(chan *Request)
	var wg sync.WaitGroup
	errs := make(chan error, opts.Concurrency)
	start := time.Now()
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range jobs {
				status, body, err := post(client, baseURL+r.Path, r.Body)
				if err != nil {
					select {
					case errs <- fmt.Errorf("loadtest: %s: %w", r.Path, err):
					default:
					}
					return
				}
				record(r, status, check(r, status, body))
			}
		}()
	}
	for i := range plan.Requests {
		jobs <- &plan.Requests[i]
	}
	close(jobs)
	wg.Wait()
	rep.DurationMs = time.Since(start).Milliseconds()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		rep.Throughput = float64(rep.Requests) / sec
	}
	return rep, nil
}

// post sends one request and reads the whole response.
func post(client *http.Client, url string, body []byte) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// check compares one response against the plan's expectation; nil means
// the response matched.
func check(r *Request, status int, body []byte) *Divergence {
	if r.ExpectStatus == 0 {
		// Deadline-doomed: the request must either finish (a warm cache
		// can beat even a 1 ms budget) or time out cleanly — any other
		// status is a bug. The body is unchecked: the oracle does not
		// spend the simulation time these requests are designed to abort.
		if status != http.StatusOK && status != http.StatusGatewayTimeout {
			return &Divergence{Kind: r.Kind, Path: r.Path,
				Detail: fmt.Sprintf("status %d, want 200 or 504: %s", status, truncate(string(body), 200))}
		}
		return nil
	}
	if status != r.ExpectStatus {
		return &Divergence{Kind: r.Kind, Path: r.Path,
			Detail: fmt.Sprintf("status %d, want %d: %s", status, r.ExpectStatus, truncate(string(body), 200))}
	}
	if r.ExpectBody != nil && !bytes.Equal(body, r.ExpectBody) {
		return &Divergence{Kind: r.Kind, Path: r.Path,
			Detail: fmt.Sprintf("body diverges from direct run:\n got: %s\nwant: %s",
				truncate(string(body), 400), truncate(string(r.ExpectBody), 400))}
	}
	return nil
}

// Err distils a report into pass/fail: divergences or a goroutine leak
// fail the scenario.
func (r *Report) Err() error {
	if r.DivergenceCount > 0 {
		detail := ""
		if len(r.Divergences) > 0 {
			detail = ": " + r.Divergences[0].Detail
		}
		return fmt.Errorf("loadtest: %d of %d responses diverged from direct in-process runs%s",
			r.DivergenceCount, r.Requests, detail)
	}
	// Allow a tiny slack over the pre-serve baseline: runtime helper
	// goroutines (GC workers, timer scavenger) come and go.
	if r.GoroutinesEnd > r.GoroutinesStart+3 {
		return fmt.Errorf("loadtest: goroutine leak: %d before serving, %d after drain",
			r.GoroutinesStart, r.GoroutinesEnd)
	}
	return nil
}

// String renders the one-line summary the selftest prints per scenario.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %d reqs x%d conc (GOMAXPROCS %d) in %dms = %.1f req/s; status%s; hit rate %.0f%%; divergences %d; goroutines %d->%d; heap %.1f MB",
		r.Scenario, r.Requests, r.Concurrency, r.GOMAXPROCS, r.DurationMs, r.Throughput,
		sortedStatuses(r.StatusCounts), 100*r.CacheHitRate, r.DivergenceCount,
		r.GoroutinesStart, r.GoroutinesEnd, r.HeapAllocMB)
}

// ScalingPoint is one GOMAXPROCS measurement of the scaling study.
type ScalingPoint struct {
	Procs      int     `json:"procs"`
	Throughput float64 `json:"throughput_rps"`
	DurationMs int64   `json:"duration_ms"`
}

// RunScaling measures throughput of the same scenario at each
// GOMAXPROCS setting (fresh server and cold cache per point, no doomed
// requests — pure throughput). GOMAXPROCS is restored on return.
func RunScaling(opts Options, procs []int) ([]ScalingPoint, error) {
	opts = opts.withDefaults()
	opts.NoDoomed = true
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	points := make([]ScalingPoint, 0, len(procs))
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		rep, err := Run(opts)
		if err != nil {
			return points, err
		}
		if err := rep.Err(); err != nil {
			return points, fmt.Errorf("at GOMAXPROCS %d: %w", p, err)
		}
		points = append(points, ScalingPoint{Procs: p, Throughput: rep.Throughput, DurationMs: rep.DurationMs})
	}
	return points, nil
}

// ScalingProcs returns the GOMAXPROCS ladder the host can genuinely
// test: {1, 2, 4} truncated to the CPU count (running more procs than
// cores adds scheduler churn, not parallelism). On a single-CPU host
// the ladder has one rung and the study is vacuous — callers skip.
func ScalingProcs() []int {
	procs := []int{1}
	for _, p := range []int{2, 4} {
		if runtime.NumCPU() >= p {
			procs = append(procs, p)
		}
	}
	return procs
}

// CheckScaling asserts the acceptance property: throughput at the
// highest core count beats the single-core point (the daemon actually
// uses added parallelism). Intermediate points may jitter; the
// endpoints must not.
func CheckScaling(points []ScalingPoint) error {
	if len(points) < 2 {
		return fmt.Errorf("loadtest: scaling study needs at least 2 points, got %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if last.Throughput <= first.Throughput {
		return fmt.Errorf("loadtest: throughput did not scale: %.1f req/s at GOMAXPROCS %d vs %.1f req/s at %d",
			first.Throughput, first.Procs, last.Throughput, last.Procs)
	}
	return nil
}
