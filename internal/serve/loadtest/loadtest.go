// Package loadtest is the daemon's proof of correctness under load: a
// seeded generator of mixed request scenarios (compile-heavy fresh
// sources, cache-hot simulates, grid shards, synthetic sweeps, batches,
// deadline-doomed requests), a concurrent driver that fires them at an
// hsmccd server, and an oracle that computes every deterministic
// request's expected response by running the bench harness directly
// in-process — any byte of difference between what the HTTP path
// returned and what the direct run produced is a divergence.
//
// The harness also audits the daemon's resource discipline: goroutine
// counts must return to baseline once the server drains (no leaks),
// heap stays bounded, and throughput must rise with GOMAXPROCS (the
// scaling study). cmd/hsmccd -selftest and the CI load job both run it;
// docs/SERVING.md explains how to read the report.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"hsmcc/internal/bench"
	"hsmcc/internal/serve"
	"hsmcc/internal/serve/chaos"
	"hsmcc/internal/synth"
)

// Kind names a request archetype in the mix.
type Kind string

// Request kinds.
const (
	KindCompile   Kind = "compile"   // compile-heavy: distinct fresh sources
	KindHot       Kind = "hot"       // cache-hot simulate: a small repeated pool
	KindSynth     Kind = "synth"     // synthetic-key simulates (sweep-ish)
	KindTranslate Kind = "translate" // translation pipeline
	KindGrid      Kind = "grid"      // small grid sweeps, NDJSON streams
	KindBatch     Kind = "batch"     // heterogeneous batches, NDJSON streams
	KindDoomed    Kind = "doomed"    // 1 ms deadline on heavy work: expect 504
	KindBad       Kind = "bad"       // malformed/over-limit: expect 400
)

// Options parameterises a scenario.
type Options struct {
	// Seed drives every random choice; same seed = same scenario.
	Seed int64
	// Requests is the total request count (default 200).
	Requests int
	// Concurrency is the number of concurrent clients (default 32).
	Concurrency int
	// Scale is the corpus problem-size multiplier (default 0.05 — the
	// harness is about traffic shape, not simulation size).
	Scale float64
	// HotOnly narrows the mix to the cache-hot scenario (the hit-rate
	// acceptance check).
	HotOnly bool
	// NoDoomed removes deadline-doomed requests from the mix (the
	// scaling study wants pure throughput).
	NoDoomed bool
	// Chaos, when non-nil, turns the scenario into a chaos run: the
	// server is built with a seeded fault injector, the driver retries
	// chaos-failed and shed responses with jittered exponential backoff
	// (honoring Retry-After), and the report gains the ChaosReport
	// audit (fault counts, slot-bound witness, drain check).
	Chaos *chaos.Plan
	// SlotBound overrides the server's MaxInFlight for chaos runs
	// (default 16 — small enough that the mix genuinely contends).
	SlotBound int
	// QueueBound overrides the server's MaxQueue for chaos runs.
	QueueBound int
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 32
	}
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.SlotBound <= 0 {
		o.SlotBound = 16
	}
	if o.QueueBound == 0 {
		o.QueueBound = 256
	}
	return o
}

// Request is one planned request with its expectation.
type Request struct {
	Kind Kind
	Path string
	Body []byte
	// ExpectStatus is the required response status (0 = either 200 or
	// 504, the doomed-request allowance).
	ExpectStatus int
	// ExpectBody, when non-nil, must match the response body exactly.
	ExpectBody []byte
}

// Plan is a generated scenario: the request sequence plus bookkeeping.
type Plan struct {
	Opts     Options
	Requests []Request
}

// Divergence is one observed mismatch between the served response and
// the in-process oracle.
type Divergence struct {
	Kind   Kind   `json:"kind"`
	Path   string `json:"path"`
	Detail string `json:"detail"`
}

// Report is the outcome of one Run.
type Report struct {
	Scenario        string           `json:"scenario"`
	Seed            int64            `json:"seed"`
	Requests        int              `json:"requests"`
	Concurrency     int              `json:"concurrency"`
	GOMAXPROCS      int              `json:"gomaxprocs"`
	DurationMs      int64            `json:"duration_ms"`
	Throughput      float64          `json:"throughput_rps"`
	// Client-observed end-to-end latency percentiles (including retry
	// backoff), in milliseconds.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	// BadRequestIDs counts responses whose X-Request-Id header was
	// missing or malformed — every response, success or error, must
	// carry one (see RequestIDPattern).
	BadRequestIDs int64         `json:"bad_request_ids"`
	StatusCounts  map[int]int64 `json:"status_counts"`
	KindCounts      map[Kind]int64   `json:"kind_counts"`
	DivergenceCount int              `json:"divergence_count"`
	Divergences     []Divergence     `json:"divergences,omitempty"`
	Cache           bench.CacheStats `json:"cache"`
	CacheHitRate    float64          `json:"cache_hit_rate"`
	GoroutinesStart int              `json:"goroutines_start"`
	GoroutinesEnd   int              `json:"goroutines_end"`
	HeapAllocMB     float64          `json:"heap_alloc_mb"`
	// Chaos is the fault-injection audit (chaos runs only).
	Chaos *ChaosReport `json:"chaos,omitempty"`
}

// ChaosReport audits one chaos run: what the injector did, how the
// client coped, and the two structural witnesses — the slot-bound
// high-water mark and the drain check.
type ChaosReport struct {
	Seed    int64       `json:"seed"`
	Faults  chaos.Stats `json:"faults"`
	Retries int64       `json:"retries"`
	// GaveUp counts requests that still held a chaos-marked (or shed)
	// failure after the retry budget; they are not divergences — the
	// correctness gate covers successful responses.
	GaveUp int64 `json:"gave_up"`
	// PeakInFlight is the gate's high-water mark; it must never exceed
	// SlotBound.
	PeakInFlight int64 `json:"peak_in_flight"`
	SlotBound    int64 `json:"slot_bound"`
	// Shed counts 503-shed admissions.
	Shed int64 `json:"shed"`
	// Panics is the server's recovered-panic counter.
	Panics int64 `json:"panics"`
	// DrainOK reports that the post-traffic drain check passed:
	// /healthz flipped to draining, new work was refused, and the
	// in-flight request was cut off by CancelInFlight within the drain
	// deadline.
	DrainOK bool `json:"drain_ok"`
	// DrainMs is how long the drain check took end to end.
	DrainMs int64 `json:"drain_ms"`
}

// maxDivergenceDetail caps the per-report divergence detail (the count
// is always exact).
const maxDivergenceDetail = 10

// hotPool is the cache-hot scenario's request pool: a handful of
// distinct cells each requested many times, so the steady state is
// almost pure cache hits on compile/translate/baseline.
func hotPool(scale float64) []serve.SimRequest {
	return []serve.SimRequest{
		{Workload: "pi", Cores: 4, Scale: scale, Policy: "size"},
		{Workload: "dot", Cores: 2, Scale: scale, Policy: "offchip"},
		{Workload: "primes", Cores: 4, Scale: scale, Policy: "size"},
		{Workload: "sum35", Cores: 2, Scale: scale, Policy: "freq"},
	}
}

// synthPool returns n small synthetic vectors (seeded): a few repeated
// sweep points plus genuinely fresh keys to exercise compiles and
// eviction.
func synthPool(seed int64, n int) []string {
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, synth.ParamsForSeed(seed+int64(i)).Key())
	}
	return keys
}

// Generate builds the deterministic request plan for opts. Oracle
// expectations are NOT resolved here — Resolve computes them (it costs
// real simulation time and callers may want to time only the traffic).
// A generator bug (unmarshalable body) fails the scenario with an
// error like the rest of the driver; it never kills the harness.
func Generate(opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	hot := hotPool(opts.Scale)
	synthKeys := synthPool(opts.Seed, 6)
	freshSynth := synthPool(opts.Seed+1000, opts.Requests/8+1)
	freshIdx := 0

	plan := &Plan{Opts: opts}
	var genErr error
	add := func(k Kind, path string, body any, status int) {
		b, err := json.Marshal(body)
		if err != nil {
			if genErr == nil {
				genErr = fmt.Errorf("loadtest: marshal %T: %w", body, err)
			}
			return
		}
		plan.Requests = append(plan.Requests, Request{Kind: k, Path: path, Body: b, ExpectStatus: status})
	}

	for i := 0; i < opts.Requests; i++ {
		roll := rng.Float64()
		if opts.HotOnly {
			roll = 0 // everything lands in the hot bucket
		}
		switch {
		case roll < 0.40: // cache-hot simulate
			req := hot[rng.Intn(len(hot))]
			add(KindHot, "/v1/simulate", req, 200)
		case roll < 0.55: // compile-heavy: mostly fresh sources
			var key string
			if rng.Float64() < 0.7 && freshIdx < len(freshSynth) {
				key = freshSynth[freshIdx]
				freshIdx++
			} else {
				key = synthKeys[rng.Intn(len(synthKeys))]
			}
			add(KindCompile, "/v1/compile", serve.SimRequest{Workload: key, Cores: 2 + 2*rng.Intn(2), Scale: 1.0}, 200)
		case roll < 0.70: // synthetic simulate sweep points
			req := serve.SimRequest{
				Workload: synthKeys[rng.Intn(len(synthKeys))],
				Cores:    2 + 2*rng.Intn(2),
				Scale:    1.0,
				Policy:   []string{"size", "offchip", "profiled"}[rng.Intn(3)],
			}
			if req.Policy == "profiled" {
				req.MPBBudget = 512
			}
			add(KindSynth, "/v1/simulate", req, 200)
		case roll < 0.78: // translate
			req := hot[rng.Intn(len(hot))]
			req.Policy = []string{"size", "offchip"}[rng.Intn(2)]
			add(KindTranslate, "/v1/translate", req, 200)
		case roll < 0.84: // grid shard
			g := bench.Grid{
				Name:      "load",
				Workloads: []string{hot[rng.Intn(len(hot))].Workload},
				Cores:     []int{2, 4},
				Policies:  []string{"offchip", "size"},
				Scale:     opts.Scale,
			}
			add(KindGrid, "/v1/grid", serve.GridRequest{Grid: g, Parallel: 2}, 200)
		case roll < 0.92: // batch
			n := 2 + rng.Intn(3)
			items := make([]serve.BatchItem, 0, n)
			for j := 0; j < n; j++ {
				op := []string{"compile", "simulate", "translate"}[rng.Intn(3)]
				items = append(items, serve.BatchItem{Op: op, SimRequest: hot[rng.Intn(len(hot))]})
			}
			add(KindBatch, "/v1/batch", serve.BatchRequest{Items: items, Parallel: 2}, 200)
		case roll < 0.96 && !opts.NoDoomed: // doomed: 1 ms budget on heavy work
			req := serve.SimRequest{Workload: "lu", Cores: 8, Scale: 0.5, Policy: "size", DeadlineMs: 1}
			add(KindDoomed, "/v1/simulate", req, 0)
		default: // hostile: over-limit and malformed requests must 400
			bad := []serve.SimRequest{
				{Workload: "pi", Cores: 1 << 20},
				{Workload: "synth:nope"},
				{Workload: "no-such-workload"},
				{Workload: "pi", Cores: 4, Scale: 1e9},
			}[rng.Intn(4)]
			add(KindBad, "/v1/simulate", bad, 400)
		}
	}
	if genErr != nil {
		return nil, genErr
	}
	return plan, nil
}

// Resolve computes the oracle expectation for every deterministic
// request by running the bench harness directly in-process (serially,
// against a fresh unbounded cache — the reference the daemon must
// match byte-for-byte). Doomed and malformed requests keep status-only
// expectations.
func (p *Plan) Resolve() error {
	oracle := newOracle()
	for i := range p.Requests {
		r := &p.Requests[i]
		if r.ExpectStatus != 200 {
			continue
		}
		body, err := oracle.expect(r)
		if err != nil {
			return fmt.Errorf("loadtest: oracle for %s %s: %w", r.Path, r.Body, err)
		}
		r.ExpectBody = body
	}
	return nil
}

// oracle renders expected response bodies from direct in-process runs.
type oracle struct {
	cfgTemplate bench.Config
	// memo collapses identical request bodies to one computation.
	memo map[string][]byte
	srv  *serve.Server
}

func newOracle() *oracle {
	return &oracle{
		cfgTemplate: bench.DefaultConfig().PrecomputeMachineEnv(),
		memo:        make(map[string][]byte),
	}
}

// expect computes the canonical response for r.
//
// Compile/translate/simulate responses are rebuilt from direct
// bench.CompileBaseline / TranslateWorkload / RunBothBackends calls;
// grid streams from a direct serial bench.RunGrid; batch lines from the
// per-item singles. The serve response structs are reused so the JSON
// shape is identical by construction — what is being tested is that
// the daemon's concurrent, shared-cache, HTTP-framed path produces the
// same bytes as this serial direct path.
func (o *oracle) expect(r *Request) ([]byte, error) {
	key := r.Path + "\x00" + string(r.Body)
	if b, ok := o.memo[key]; ok {
		return b, nil
	}
	var body []byte
	var err error
	switch r.Path {
	case "/v1/compile", "/v1/translate", "/v1/simulate":
		var req serve.SimRequest
		if err := json.Unmarshal(r.Body, &req); err != nil {
			return nil, err
		}
		body, err = o.single(r.Path, req)
	case "/v1/grid":
		var req serve.GridRequest
		if err := json.Unmarshal(r.Body, &req); err != nil {
			return nil, err
		}
		body, err = o.grid(req)
	case "/v1/batch":
		var req serve.BatchRequest
		if err := json.Unmarshal(r.Body, &req); err != nil {
			return nil, err
		}
		body, err = o.batch(req)
	default:
		return nil, fmt.Errorf("no oracle for %s", r.Path)
	}
	if err != nil {
		return nil, err
	}
	o.memo[key] = body
	return body, nil
}

func marshalLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// single computes one compile/translate/simulate expectation using the
// direct bench API.
func (o *oracle) single(path string, req serve.SimRequest) ([]byte, error) {
	resp, err := o.direct(path, req)
	if err != nil {
		return nil, err
	}
	return marshalLine(resp)
}

// direct runs one operation through the bench harness (no HTTP, no
// shared cache) and shapes the serve response struct.
func (o *oracle) direct(path string, req serve.SimRequest) (any, error) {
	// Mirror the server's defaulting so oracle and daemon agree on the
	// effective request.
	if req.Cores == 0 {
		req.Cores = 4
	}
	if req.Scale == 0 {
		req.Scale = 1.0
	}
	if req.Policy == "" {
		req.Policy = "size"
	}
	w, ok := bench.ByKey(req.Workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", req.Workload)
	}
	policy, err := bench.ParsePolicy(req.Policy)
	if err != nil {
		return nil, err
	}
	cfg := o.cfgTemplate
	cfg.Threads = req.Cores
	cfg.Scale = req.Scale
	cfg.MPBCapacity = req.MPBBudget
	cfg.Cache = bench.NewCache()

	switch path {
	case "/v1/compile":
		pr, err := bench.CompileBaseline(w, cfg)
		if err != nil {
			return nil, err
		}
		return &serve.CompileResponse{
			Workload:      req.Workload,
			Cores:         req.Cores,
			Scale:         req.Scale,
			Funcs:         len(pr.Funcs),
			FullyCompiled: pr.FullyCompiled(),
			SourceBytes:   len(w.Source(req.Cores, req.Scale)),
		}, nil
	case "/v1/translate":
		tr, err := bench.TranslateWorkload(w, cfg, policy)
		if err != nil {
			return nil, err
		}
		resp := &serve.TranslateResponse{
			Workload:    req.Workload,
			Cores:       req.Cores,
			Scale:       req.Scale,
			Policy:      req.Policy,
			MPBBudget:   req.MPBBudget,
			OnChipBytes: tr.OnChipBytes,
			Source:      tr.Source,
		}
		if tr.Placement != nil {
			resp.PlacementDigest = tr.Placement.Digest()
		}
		return resp, nil
	case "/v1/simulate":
		both, err := bench.RunBothBackends(w, cfg, policy)
		if err != nil {
			return nil, err
		}
		return &serve.SimulateResponse{
			Workload:        req.Workload,
			Cores:           req.Cores,
			Scale:           req.Scale,
			Policy:          req.Policy,
			MPBBudget:       req.MPBBudget,
			Engine:          cfg.Engine.Resolve().String(),
			BaselinePs:      uint64(both.Baseline.Makespan),
			RCCEPs:          uint64(both.RCCE.Makespan),
			Speedup:         bench.Speedup(both.Baseline, both.RCCE),
			Match:           both.Match,
			OnChipBytes:     both.RCCE.OnChipBytes,
			PlacementDigest: both.RCCE.PlacementDigest,
			MPBAccesses:     both.RCCE.Stats.MPBAccesses,
			SharedAccesses:  both.RCCE.Stats.SharedAccesses,
		}, nil
	}
	return nil, fmt.Errorf("no oracle op for %s", path)
}

// grid renders the expected NDJSON stream from a direct serial RunGrid.
func (o *oracle) grid(req serve.GridRequest) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_, err := bench.RunGrid(req.Grid, bench.RunOptions{
		Parallel: 1,
		Engine:   req.Engine,
		OnResult: func(res bench.CellResult) { enc.Encode(res) },
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// batch renders the expected NDJSON stream from per-item direct runs.
func (o *oracle) batch(req serve.BatchRequest) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, item := range req.Items {
		line := serve.BatchLine{Index: i, Op: item.Op}
		resp, err := o.direct("/v1/"+item.Op, item.SimRequest)
		if err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
		switch item.Op {
		case "compile":
			line.Compile = resp.(*serve.CompileResponse)
		case "translate":
			line.Translate = resp.(*serve.TranslateResponse)
		case "simulate":
			line.Simulate = resp.(*serve.SimulateResponse)
		}
		if err := enc.Encode(line); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// truncate keeps divergence detail readable.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// sortedStatuses renders status counts deterministically for logs.
func sortedStatuses(m map[int]int64) string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&buf, " %d:%d", k, m[k])
	}
	return buf.String()
}

// memSnapshotMB reports post-GC heap use.
func memSnapshotMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// SettleGoroutines polls until the goroutine count drops to at most
// want (or the timeout passes) and returns the final count — HTTP
// keep-alive workers and timer goroutines need a beat to drain.
func SettleGoroutines(want int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
