// Package chaos is the daemon's seeded fault-injection plane. An
// Injector implements the bench.Config.Fault hook: threaded through
// serve.Options.Fault it fires at the named compute stages ("compile",
// "translate", "baseline", "simulate", "profile") inside the memoized
// closures, deterministically injecting compute panics, delays and
// spurious cancellations from one seeded stream. Because the faults
// land inside the cache's compute path, they exercise the exact
// discipline the robustness layer promises: panicked and canceled
// computations are dropped (never cached, never poisoning coalesced
// waiters), handlers answer clean 500/504 envelopes, and the process
// survives.
//
// Every injected failure is tagged with the "chaos:" marker, which is
// how the load-test harness's retrying client distinguishes an
// injected fault (retry) from a genuine server bug (divergence).
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Plan parameterises one seeded fault-injection run. Rates are
// per-stage-visit probabilities; they are rolled once per visit in
// order panic, delay, cancel from a single seeded stream, so a given
// (seed, visit sequence) is reproducible.
type Plan struct {
	// Seed drives every roll; same seed + same visit order = same
	// faults.
	Seed int64 `json:"seed"`
	// PanicRate is the probability a visit panics (recovered by the
	// serving stack into a 500).
	PanicRate float64 `json:"panic_rate"`
	// DelayRate is the probability a visit sleeps (up to MaxDelay) —
	// the jitter that shakes out ordering assumptions under -race.
	DelayRate float64 `json:"delay_rate"`
	// CancelRate is the probability a visit fails with an injected
	// cancellation (wrapping context.Canceled, so it travels the 504 /
	// drop-from-cache path).
	CancelRate float64 `json:"cancel_rate"`
	// MaxDelay bounds an injected delay (default 2ms).
	MaxDelay time.Duration `json:"max_delay_ns"`
	// Stages, when non-nil, restricts injection to the named stages.
	Stages map[string]bool `json:"stages,omitempty"`
}

// DefaultPlan is the stock mixed-fault plan for the chaos selftest.
func DefaultPlan(seed int64) Plan {
	return Plan{
		Seed:       seed,
		PanicRate:  0.05,
		DelayRate:  0.08,
		CancelRate: 0.05,
		MaxDelay:   2 * time.Millisecond,
	}
}

// Stats counts what an Injector actually did.
type Stats struct {
	// Visits counts Fault calls that were eligible for injection.
	Visits int64 `json:"visits"`
	// Panics/Delays/Cancels count injected faults by kind.
	Panics  int64 `json:"panics"`
	Delays  int64 `json:"delays"`
	Cancels int64 `json:"cancels"`
}

// Injected is the total fault count across kinds.
func (s Stats) Injected() int64 { return s.Panics + s.Delays + s.Cancels }

// Injector is a concurrency-safe fault source for one Plan.
type Injector struct {
	mu    sync.Mutex
	plan  Plan
	rng   *rand.Rand
	stats Stats
}

// New builds an Injector for plan.
func New(plan Plan) *Injector {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 2 * time.Millisecond
	}
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Fault is the bench.Config.Fault hook: called at each compute stage,
// it returns nil (no fault, possibly after an injected delay), returns
// an injected cancellation, or panics. The roll and counters happen
// under the injector lock; the panic and the sleep happen outside it.
func (in *Injector) Fault(stage string) error {
	in.mu.Lock()
	if in.plan.Stages != nil && !in.plan.Stages[stage] {
		in.mu.Unlock()
		return nil
	}
	in.stats.Visits++
	roll := in.rng.Float64()
	p := &in.plan
	var delay time.Duration
	const (
		actNone = iota
		actPanic
		actDelay
		actCancel
	)
	act := actNone
	switch {
	case roll < p.PanicRate:
		act = actPanic
		in.stats.Panics++
	case roll < p.PanicRate+p.DelayRate:
		act = actDelay
		in.stats.Delays++
		delay = time.Duration(in.rng.Int63n(int64(p.MaxDelay)) + 1)
	case roll < p.PanicRate+p.DelayRate+p.CancelRate:
		act = actCancel
		in.stats.Cancels++
	}
	in.mu.Unlock()
	switch act {
	case actPanic:
		panic(fmt.Sprintf("chaos: injected panic at %s", stage))
	case actDelay:
		time.Sleep(delay)
	case actCancel:
		return fmt.Errorf("chaos: injected cancellation at %s: %w", stage, context.Canceled)
	}
	return nil
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
