package serve

// The endpoint integration suite: every endpoint exercised over real
// HTTP (httptest) against golden request/response pairs — success
// bodies, error envelopes, method rejections — plus the two dynamic
// properties goldens cannot pin: warm-vs-cold byte identity and
// cancellation consistency. Regenerate goldens with
// `go test ./internal/serve -run TestGolden -update` after an
// intentional response-shape or simulator change.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func do(t *testing.T, ts *httptest.Server, method, path, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// goldenCase is one request/response pair of the conformance suite.
type goldenCase struct {
	name   string
	method string
	path   string
	body   string
	status int
}

// goldenCases covers every endpoint: the success path and each
// distinct error path (validation, admission limits, method, body
// framing). Scales are tiny — the suite pins shapes and statuses, the
// load-test harness pins behavior at volume.
func goldenCases() []goldenCase {
	return []goldenCase{
		{"compile_ok", "POST", "/v1/compile", `{"workload":"pi","cores":2,"scale":0.01}`, 200},
		{"compile_synth_ok", "POST", "/v1/compile", `{"workload":"synth:s7:o24:m0.5:l0.5:h0.25:d2:a8:p8:r2:ki","cores":2}`, 200},
		{"translate_ok", "POST", "/v1/translate", `{"workload":"pi","cores":2,"scale":0.01,"policy":"size"}`, 200},
		{"simulate_ok", "POST", "/v1/simulate", `{"workload":"pi","cores":2,"scale":0.01,"policy":"size"}`, 200},
		{"simulate_offchip_ok", "POST", "/v1/simulate", `{"workload":"dot","cores":2,"scale":0.01,"policy":"offchip"}`, 200},
		{"simulate_treewalk_ok", "POST", "/v1/simulate", `{"workload":"pi","cores":2,"scale":0.01,"engine":"treewalk"}`, 200},
		{"grid_ok", "POST", "/v1/grid", `{"grid":{"name":"t","workloads":["pi"],"cores":[1,2],"policies":["offchip","size"],"scale":0.01}}`, 200},
		{"batch_ok", "POST", "/v1/batch", `{"items":[{"op":"compile","workload":"pi","cores":2,"scale":0.01},{"op":"simulate","workload":"pi","cores":2,"scale":0.01}]}`, 200},
		{"healthz_ok", "GET", "/healthz", "", 200},

		// Error paths: validation.
		{"err_missing_workload", "POST", "/v1/simulate", `{"cores":2}`, 400},
		{"err_unknown_workload", "POST", "/v1/simulate", `{"workload":"nope"}`, 400},
		{"err_bad_synth_key", "POST", "/v1/simulate", `{"workload":"synth:garbage"}`, 400},
		{"err_synth_over_budget", "POST", "/v1/simulate", `{"workload":"synth:s1:o65536:m0.5:l0.5:h0.25:d2:a8:p8:r8:ki"}`, 400},
		{"err_over_limit_cores", "POST", "/v1/simulate", `{"workload":"pi","cores":1048576}`, 400},
		{"err_over_limit_scale", "POST", "/v1/simulate", `{"workload":"pi","scale":1000000}`, 400},
		{"err_negative_budget", "POST", "/v1/simulate", `{"workload":"pi","mpb_budget":-1}`, 400},
		{"err_bad_policy", "POST", "/v1/simulate", `{"workload":"pi","policy":"mystery"}`, 400},
		{"err_bad_engine", "POST", "/v1/simulate", `{"workload":"pi","engine":"quantum"}`, 400},

		// Error paths: body framing.
		{"err_bad_json", "POST", "/v1/simulate", `{"workload":`, 400},
		{"err_unknown_field", "POST", "/v1/simulate", `{"workload":"pi","surprise":1}`, 400},
		{"err_trailing_data", "POST", "/v1/simulate", `{"workload":"pi"}{"workload":"pi"}`, 400},

		// Error paths: method and batch/grid admission.
		{"err_get_on_post", "GET", "/v1/simulate", "", 405},
		{"err_post_on_metrics", "POST", "/metrics", "", 405},
		{"err_empty_batch", "POST", "/v1/batch", `{"items":[]}`, 400},
		{"err_batch_unknown_op", "POST", "/v1/batch", `{"items":[{"op":"explode","workload":"pi","cores":2,"scale":0.01}]}`, 200},
		{"err_grid_bad_cores", "POST", "/v1/grid", `{"grid":{"name":"t","workloads":["pi"],"cores":[1048576],"policies":["size"],"scale":0.01}}`, 400},
		{"err_grid_bad_synth", "POST", "/v1/grid", `{"grid":{"name":"t","workloads":["synth:zzz"],"cores":[2],"policies":["size"],"scale":0.01}}`, 400},
	}
}

// TestGoldenEndpoints replays every case against one server and
// compares status + body with the checked-in golden bytes.
func TestGoldenEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, ts, tc.method, tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d; body: %s", status, tc.status, body)
			}
			got := fmt.Sprintf("status: %d\n%s", status, body)
			path := filepath.Join("testdata", "golden", tc.name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Fatalf("response diverged from golden %s:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}

// TestWarmColdByteIdentity pins the determinism contract: the same
// simulate request answers byte-identically from a cold cache, from a
// warm cache, and from a different server instance entirely.
func TestWarmColdByteIdentity(t *testing.T) {
	const req = `{"workload":"dot","cores":4,"scale":0.02,"policy":"size"}`
	_, a := newTestServer(t, Options{})
	status, cold := do(t, a, "POST", "/v1/simulate", req)
	if status != 200 {
		t.Fatalf("cold status %d: %s", status, cold)
	}
	_, warm := do(t, a, "POST", "/v1/simulate", req)
	if warm != cold {
		t.Fatalf("warm response diverged from cold:\nwarm: %s\ncold: %s", warm, cold)
	}
	_, b := newTestServer(t, Options{})
	_, other := do(t, b, "POST", "/v1/simulate", req)
	if other != cold {
		t.Fatalf("fresh-server response diverged:\nother: %s\n cold: %s", other, cold)
	}
	// The streaming endpoints carry the same contract.
	const grid = `{"grid":{"name":"t","workloads":["pi"],"cores":[1,2],"policies":["offchip","size"],"scale":0.01},"parallel":2}`
	_, g1 := do(t, a, "POST", "/v1/grid", grid)
	_, g2 := do(t, a, "POST", "/v1/grid", grid)
	if g1 != g2 {
		t.Fatalf("grid stream diverged between warm repeats:\n1: %s\n2: %s", g1, g2)
	}
}

// TestDeadline504NoPartialResults pins the deadline contract: a
// simulate whose budget fires mid-run answers 504 with exactly the
// JSON error envelope — no partial simulation fields ever leak.
func TestDeadline504NoPartialResults(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := do(t, ts, "POST", "/v1/simulate",
		`{"workload":"lu","cores":8,"scale":0.5,"deadline_ms":1}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body: %s", status, body)
	}
	var envelope struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
	dec := json.NewDecoder(strings.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&envelope); err != nil {
		t.Fatalf("504 body is not the bare error envelope: %v\nbody: %s", err, body)
	}
	if envelope.Status != 504 || envelope.Error == "" {
		t.Fatalf("malformed error envelope: %+v", envelope)
	}
	if strings.Contains(body, "baseline_ps") || strings.Contains(body, "speedup") {
		t.Fatalf("504 body leaks simulation fields: %s", body)
	}
}

// TestSimulateCancelConsistency is the cache-consistency half of the
// cancellation story: a request canceled mid-simulation must stop the
// stepper promptly (bounded 504 latency), must not poison the cache
// with partial or errored entries, and an identical request afterwards
// must produce the same bytes as a never-canceled server.
func TestSimulateCancelConsistency(t *testing.T) {
	const req = `{"workload":"lu","cores":8,"scale":0.3,"policy":"size"}`
	const doomed = `{"workload":"lu","cores":8,"scale":0.3,"policy":"size","deadline_ms":1}`

	// Reference: the request on a server that never saw a cancellation.
	_, clean := newTestServer(t, Options{})
	status, want := do(t, clean, "POST", "/v1/simulate", req)
	if status != 200 {
		t.Fatalf("reference run failed: %d %s", status, want)
	}

	// Victim server: cancel the same work mid-flight, repeatedly.
	s, ts := newTestServer(t, Options{})
	sawCancel := false
	for i := 0; i < 3; i++ {
		status, body := do(t, ts, "POST", "/v1/simulate", doomed)
		switch status {
		case http.StatusGatewayTimeout:
			sawCancel = true
		case http.StatusOK:
			// A warm cache can beat even 1 ms; fine.
		default:
			t.Fatalf("doomed request %d: status %d: %s", i, status, body)
		}
	}
	if !sawCancel {
		t.Skip("no doomed request actually timed out — host too fast for the 1ms budget to fire")
	}

	// The canceled computations must not have been cached as errors:
	// the full request now succeeds and matches the clean server
	// byte-for-byte.
	status, got := do(t, ts, "POST", "/v1/simulate", req)
	if status != 200 {
		t.Fatalf("post-cancel run failed: %d %s — a canceled computation poisoned the cache", status, got)
	}
	if got != want {
		t.Fatalf("post-cancel response diverged from never-canceled server:\n got: %s\nwant: %s", got, want)
	}
	if s.Cache().Stats().Entries == 0 {
		t.Fatal("cache is empty after a successful run")
	}
}

// TestMetricsSnapshot sanity-checks /metrics after traffic: request
// counts, status buckets and cache counters must reflect what happened.
func TestMetricsSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	do(t, ts, "POST", "/v1/simulate", `{"workload":"pi","cores":2,"scale":0.01}`)
	do(t, ts, "POST", "/v1/simulate", `{"workload":"pi","cores":2,"scale":0.01}`)
	do(t, ts, "POST", "/v1/simulate", `{"workload":"nope"}`)
	status, body := do(t, ts, "GET", "/metrics", "")
	if status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	sim := snap.Endpoints["simulate"]
	if sim.Requests != 3 {
		t.Fatalf("simulate requests %d, want 3", sim.Requests)
	}
	if sim.ByStatus[200] != 2 || sim.ByStatus[400] != 1 {
		t.Fatalf("simulate status counts %v, want 200:2 400:1", sim.ByStatus)
	}
	if snap.Cache.Hits == 0 {
		t.Fatal("repeat request produced no cache hit")
	}
	if snap.CacheHitRate <= 0 {
		t.Fatal("cache hit rate is zero after a warm repeat")
	}
}

// TestBodyTooLarge pins the request-size bound.
func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	big := `{"workload":"pi","policy":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	status, _ := do(t, ts, "POST", "/v1/simulate", big)
	if status != 400 {
		t.Fatalf("oversized body got status %d, want 400", status)
	}
}
