package serve

// Request decoding and admission: every simulation-bearing endpoint
// funnels through SimRequest -> resolve, so the limit checks (cores,
// scale, synthetic op budget) and the synth-key parser run in one place
// — the surface FuzzServeRequest hammers.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hsmcc/internal/bench"
	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/synth"
)

// maxBodyBytes bounds any request body the daemon will read.
const maxBodyBytes = 1 << 20

// SimRequest is the common request shape of /v1/compile, /v1/translate
// and /v1/simulate (and each /v1/batch item).
type SimRequest struct {
	// Workload is a corpus key (pi, stream, ...) or a canonical synth:
	// key — the PR-6 key-as-digest design carries into the serving
	// cache unchanged.
	Workload string `json:"workload"`
	// Cores is the thread/UE count (default 4).
	Cores int `json:"cores,omitempty"`
	// Scale is the problem-size multiplier (default 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Policy is the Stage 4 placement policy: offchip, size, freq or
	// profiled (default size). Ignored by /v1/compile.
	Policy string `json:"policy,omitempty"`
	// MPBBudget is the Stage 4 on-chip byte budget (0 = full MPB).
	MPBBudget int `json:"mpb_budget,omitempty"`
	// Engine selects the execution engine ("", compiled, treewalk).
	Engine string `json:"engine,omitempty"`
	// DeadlineMs is the request's wall-clock budget in milliseconds
	// (0 = the server default; clamped to the server maximum).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// simCall is a resolved, admitted request: everything a handler needs
// to run simulations.
type simCall struct {
	req      SimRequest
	workload bench.Workload
	policy   partition.Policy
	engine   interp.Engine
	// spans/trace are the ?spans=1 / ?trace=1 opt-ins: both add
	// non-deterministic (spans) or bulky (trace) material to the
	// response envelope, so the default — byte-identical responses —
	// requires asking.
	spans bool
	trace bool
}

// decodeJSON reads one JSON document into v, rejecting trailing data.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest("bad request body: %v", err)
	}
	if dec.More() {
		return errBadRequest("bad request body: trailing data after JSON document")
	}
	return nil
}

// resolve validates req against the server limits and resolves its
// workload, policy and engine. It fills defaults in place (so the
// request echoed in responses names the effective values).
func (s *Server) resolve(req *SimRequest) (*simCall, error) {
	if req.Cores == 0 {
		req.Cores = 4
	}
	if req.Scale == 0 {
		req.Scale = 1.0
	}
	if req.Policy == "" {
		req.Policy = "size"
	}
	if req.Workload == "" {
		return nil, errBadRequest("workload is required")
	}
	if req.Cores < 1 || req.Cores > s.limits.MaxCores {
		return nil, errBadRequest("cores %d out of range [1,%d]", req.Cores, s.limits.MaxCores)
	}
	if req.Scale < 0 || req.Scale > s.limits.MaxScale {
		return nil, errBadRequest("scale %g out of range (0,%g]", req.Scale, s.limits.MaxScale)
	}
	if req.MPBBudget < 0 {
		return nil, errBadRequest("mpb_budget %d is negative (use 0 for the full MPB)", req.MPBBudget)
	}
	if synth.IsKey(req.Workload) {
		p, err := synth.ParseKey(req.Workload)
		if err != nil {
			return nil, errBadRequest("bad synth key: %v", err)
		}
		if ops := p.Scaled(req.Scale).Ops * p.Rounds; ops > s.limits.MaxSynthOps {
			return nil, errBadRequest("synth op budget %d exceeds limit %d", ops, s.limits.MaxSynthOps)
		}
	}
	w, ok := bench.ByKey(req.Workload)
	if !ok {
		return nil, errBadRequest("unknown workload %q", req.Workload)
	}
	policy, err := bench.ParsePolicy(req.Policy)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	engine, err := interp.ParseEngine(req.Engine)
	if err != nil {
		return nil, errBadRequest("%v", err)
	}
	return &simCall{req: *req, workload: w, policy: policy, engine: engine}, nil
}

// config derives the per-request bench.Config: the server template
// (shared machine + cache) plus the request's dimensions and the
// context's cancellation.
func (s *Server) config(ctx context.Context, c *simCall) bench.Config {
	cfg := s.baseCfg
	cfg.Threads = c.req.Cores
	cfg.Scale = c.req.Scale
	cfg.MPBCapacity = c.req.MPBBudget
	cfg.Engine = c.engine
	cfg.Cancel = ctx.Err
	cfg.Fault = s.fault
	// The compute-stage span seam: fires only when a stage actually
	// runs, so cache hits leave no compute span in the request tree.
	// Like Cancel and Fault it is per-request state, never cache
	// identity.
	cfg.Span = spansFrom(ctx).start
	return cfg
}

// deadline resolves a request's effective wall-clock budget.
func (s *Server) deadline(ms int64) time.Duration {
	d := s.limits.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.limits.MaxDeadline {
		d = s.limits.MaxDeadline
	}
	return d
}

// withDeadline attaches the effective deadline to the request context
// and merges in the server's stop context: when CancelInFlight fires
// at the drain deadline, every derived request context cancels, which
// the simulations observe through interp.Sim.Cancel.
func (s *Server) withDeadline(ctx context.Context, ms int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(ctx, s.deadline(ms))
	stop := context.AfterFunc(s.stopCtx, cancel)
	return ctx, func() {
		stop()
		cancel()
	}
}

// statusOf maps a handler error to its HTTP status: explicit
// httpErrors keep theirs, recovered compute panics are 500 (and
// counted — the cache has already dropped the poisoned entry),
// cancellations are 504 (the request's wall-clock budget ran out
// mid-simulation), everything else is a 500.
func (s *Server) statusOf(err error) (int, string) {
	var he *httpError
	if errors.As(err, &he) {
		return he.status, he.msg
	}
	if bench.IsPanic(err) {
		s.metrics.panicked()
		return http.StatusInternalServerError, err.Error()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, fmt.Sprintf("deadline exceeded: %v", err)
	}
	return http.StatusInternalServerError, err.Error()
}
