// Package serve is the simulation-as-a-service layer: a long-running
// HTTP daemon (cmd/hsmccd) that keeps one process-lifetime bench.Cache
// warm across requests, so compiles, translations, baseline runs and
// access profiles are shared between every client instead of being
// redone per one-shot CLI invocation.
//
// Endpoints (see docs/SERVING.md for the full API reference):
//
//	POST /v1/compile    compile a workload's Pthread source (cache-warm)
//	POST /v1/translate  run the five-stage translation pipeline
//	POST /v1/simulate   baseline + translated run, differential check
//	POST /v1/grid       a full sweep, streamed as NDJSON cell results
//	POST /v1/batch      heterogeneous requests, streamed NDJSON, in order
//	GET  /metrics       request/latency/cache/in-flight counters (JSON)
//	GET  /healthz       liveness probe
//
// Every simulation-bearing request runs under a wall-clock deadline
// (request-supplied, capped by the server limit): the deadline cancels
// the simulation mid-flight through interp.Sim.Cancel, the client gets
// 504, and the cache stays consistent — canceled computations are
// dropped for retry, never cached.
//
// Responses are deterministic: a simulate response is byte-identical
// across repeats of the same request, warm or cold cache, which is the
// property the load-test harness (serve/loadtest) checks at scale
// against direct in-process bench runs.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hsmcc/internal/bench"
)

// Limits bounds what one request may ask for. The zero value of any
// field means "use the default" (DefaultLimits).
type Limits struct {
	// MaxCores caps the thread/UE count of a request (the machine has
	// 48 cores; oversubscription is not served).
	MaxCores int `json:"max_cores"`
	// MaxScale caps the problem-size multiplier.
	MaxScale float64 `json:"max_scale"`
	// MaxSynthOps caps a synthetic workload's total scheduled operation
	// budget (scaled per-round ops x rounds), keeping hostile synth:
	// keys from buying unbounded simulation time.
	MaxSynthOps int `json:"max_synth_ops"`
	// MaxGridCells caps the cell count of one /v1/grid request.
	MaxGridCells int `json:"max_grid_cells"`
	// MaxBatch caps the item count of one /v1/batch request.
	MaxBatch int `json:"max_batch"`
	// MaxDeadline caps the per-request wall-clock deadline; requests
	// asking for more are clamped.
	MaxDeadline time.Duration `json:"max_deadline_ns"`
	// DefaultDeadline applies when a request names no deadline.
	DefaultDeadline time.Duration `json:"default_deadline_ns"`
}

// DefaultLimits is the daemon's stock admission policy.
func DefaultLimits() Limits {
	return Limits{
		MaxCores:        48,
		MaxScale:        1.0,
		MaxSynthOps:     1 << 16,
		MaxGridCells:    4096,
		MaxBatch:        256,
		MaxDeadline:     2 * time.Minute,
		DefaultDeadline: 30 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxCores <= 0 {
		l.MaxCores = d.MaxCores
	}
	if l.MaxScale <= 0 {
		l.MaxScale = d.MaxScale
	}
	if l.MaxSynthOps <= 0 {
		l.MaxSynthOps = d.MaxSynthOps
	}
	if l.MaxGridCells <= 0 {
		l.MaxGridCells = d.MaxGridCells
	}
	if l.MaxBatch <= 0 {
		l.MaxBatch = d.MaxBatch
	}
	if l.MaxDeadline <= 0 {
		l.MaxDeadline = d.MaxDeadline
	}
	if l.DefaultDeadline <= 0 {
		l.DefaultDeadline = d.DefaultDeadline
	}
	if l.DefaultDeadline > l.MaxDeadline {
		l.DefaultDeadline = l.MaxDeadline
	}
	return l
}

// Options configures a Server.
type Options struct {
	// CacheBytes bounds the process-lifetime cache's estimated resident
	// cost (size-bounded LRU, bench.NewCacheSized); <= 0 = unbounded.
	CacheBytes int64
	// Limits is the admission policy (zero fields take defaults).
	Limits Limits
}

// Server is the simulation service: one shared cache, one limit set,
// one metrics registry. Handlers are safe for arbitrary concurrency —
// all simulation state is per-request, and the cache is lock-protected
// with immutable values.
type Server struct {
	cache   *bench.Cache
	limits  Limits
	metrics *Metrics
	mux     *http.ServeMux
	// baseCfg is the template every request's bench.Config derives
	// from: the paper's machine, with the machine-config fingerprint
	// precomputed once so per-request cache keys never build a
	// throwaway machine.
	baseCfg bench.Config
}

// New builds a Server.
func New(opts Options) *Server {
	s := &Server{
		cache:   bench.NewCacheSized(opts.CacheBytes),
		limits:  opts.Limits.withDefaults(),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	s.baseCfg = bench.DefaultConfig().PrecomputeMachineEnv()
	s.baseCfg.Cache = s.cache
	s.mux.HandleFunc("/v1/compile", s.instrument("compile", s.handleCompile))
	s.mux.HandleFunc("/v1/translate", s.instrument("translate", s.handleTranslate))
	s.mux.HandleFunc("/v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("/v1/grid", s.instrument("grid", s.handleGrid))
	s.mux.HandleFunc("/v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the process-lifetime cache (stats, tests).
func (s *Server) Cache() *bench.Cache { return s.cache }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Limits reports the effective admission policy.
func (s *Server) Limits() Limits { return s.limits }

// httpError is a handler failure with its HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError emits the JSON error envelope (unless the stream already
// started, in which case the transport has to carry the bad news).
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(errorBody{Error: msg, Status: status})
	w.Write(append(b, '\n'))
}

// writeJSON emits one deterministic JSON document: marshaled with
// encoding/json's stable field order, one trailing newline.
func writeJSON(w http.ResponseWriter, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
	return nil
}

// instrument wraps a handler with the metrics bookkeeping: request
// count, in-flight gauge, latency histogram, status counts.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.requestStarted(name)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.requestFinished(name, sw.status, time.Since(start))
	}
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the underlying writer so NDJSON streams flush
// through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
