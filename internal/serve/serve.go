// Package serve is the simulation-as-a-service layer: a long-running
// HTTP daemon (cmd/hsmccd) that keeps one process-lifetime bench.Cache
// warm across requests, so compiles, translations, baseline runs and
// access profiles are shared between every client instead of being
// redone per one-shot CLI invocation.
//
// Endpoints (see docs/SERVING.md for the full API reference):
//
//	POST /v1/compile    compile a workload's Pthread source (cache-warm)
//	POST /v1/translate  run the five-stage translation pipeline
//	POST /v1/simulate   baseline + translated run, differential check
//	POST /v1/grid       a full sweep, streamed as NDJSON cell results
//	POST /v1/batch      heterogeneous requests, streamed NDJSON, in order
//	GET  /metrics       request/latency/cache/in-flight counters (JSON)
//	GET  /healthz       liveness probe
//
// Every simulation-bearing request runs under a wall-clock deadline
// (request-supplied, capped by the server limit): the deadline cancels
// the simulation mid-flight through interp.Sim.Cancel, the client gets
// 504, and the cache stays consistent — canceled computations are
// dropped for retry, never cached.
//
// Responses are deterministic: a simulate response is byte-identical
// across repeats of the same request, warm or cold cache, which is the
// property the load-test harness (serve/loadtest) checks at scale
// against direct in-process bench runs.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"hsmcc/internal/bench"
)

// Limits bounds what one request may ask for. The zero value of any
// field means "use the default" (DefaultLimits).
type Limits struct {
	// MaxCores caps the thread/UE count of a request (the machine has
	// 48 cores; oversubscription is not served).
	MaxCores int `json:"max_cores"`
	// MaxScale caps the problem-size multiplier.
	MaxScale float64 `json:"max_scale"`
	// MaxSynthOps caps a synthetic workload's total scheduled operation
	// budget (scaled per-round ops x rounds), keeping hostile synth:
	// keys from buying unbounded simulation time.
	MaxSynthOps int `json:"max_synth_ops"`
	// MaxGridCells caps the cell count of one /v1/grid request.
	MaxGridCells int `json:"max_grid_cells"`
	// MaxBatch caps the item count of one /v1/batch request.
	MaxBatch int `json:"max_batch"`
	// MaxDeadline caps the per-request wall-clock deadline; requests
	// asking for more are clamped.
	MaxDeadline time.Duration `json:"max_deadline_ns"`
	// DefaultDeadline applies when a request names no deadline.
	DefaultDeadline time.Duration `json:"default_deadline_ns"`
	// MaxInFlight bounds the total weighted simulation work in flight
	// (compile/translate weigh 1, simulate 2, a grid its cell count, a
	// batch the sum of its items); requests beyond it queue or shed.
	MaxInFlight int `json:"max_in_flight"`
	// MaxQueue bounds the admission wait queue: requests that find the
	// gate full park here (FIFO) until slots free or their deadline
	// fires; past this depth they shed immediately with 503. Negative
	// disables queueing (full gate = immediate shed).
	MaxQueue int `json:"max_queue"`
}

// DefaultLimits is the daemon's stock admission policy.
func DefaultLimits() Limits {
	return Limits{
		MaxCores:        48,
		MaxScale:        1.0,
		MaxSynthOps:     1 << 16,
		MaxGridCells:    4096,
		MaxBatch:        256,
		MaxDeadline:     2 * time.Minute,
		DefaultDeadline: 30 * time.Second,
		MaxInFlight:     64,
		MaxQueue:        256,
	}
}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxCores <= 0 {
		l.MaxCores = d.MaxCores
	}
	if l.MaxScale <= 0 {
		l.MaxScale = d.MaxScale
	}
	if l.MaxSynthOps <= 0 {
		l.MaxSynthOps = d.MaxSynthOps
	}
	if l.MaxGridCells <= 0 {
		l.MaxGridCells = d.MaxGridCells
	}
	if l.MaxBatch <= 0 {
		l.MaxBatch = d.MaxBatch
	}
	if l.MaxDeadline <= 0 {
		l.MaxDeadline = d.MaxDeadline
	}
	if l.DefaultDeadline <= 0 {
		l.DefaultDeadline = d.DefaultDeadline
	}
	if l.DefaultDeadline > l.MaxDeadline {
		l.DefaultDeadline = l.MaxDeadline
	}
	if l.MaxInFlight <= 0 {
		l.MaxInFlight = d.MaxInFlight
	}
	if l.MaxQueue == 0 {
		l.MaxQueue = d.MaxQueue
	}
	if l.MaxQueue < 0 {
		l.MaxQueue = 0
	}
	return l
}

// Options configures a Server.
type Options struct {
	// CacheBytes bounds the process-lifetime cache's estimated resident
	// cost (size-bounded LRU, bench.NewCacheSized); <= 0 = unbounded.
	CacheBytes int64
	// Limits is the admission policy (zero fields take defaults).
	Limits Limits
	// Fault, when non-nil, is the chaos-injection seam threaded into
	// every request's bench.Config (see bench.Config.Fault): it fires
	// at the named compute stages so injected panics, delays and
	// cancellations exercise the real serving path. Production servers
	// leave it nil; the chaos selftest and tests install an injector.
	Fault func(stage string) error
	// Logger, when non-nil, receives one structured line per finished
	// request (request id, endpoint, status, duration). Requests slower
	// than SlowThreshold log at Warn with their span tree attached;
	// 5xx responses log at Error.
	Logger *slog.Logger
	// SlowThreshold is the duration beyond which a request counts as
	// slow (0 disables slow-request escalation).
	SlowThreshold time.Duration
}

// Server is the simulation service: one shared cache, one limit set,
// one metrics registry. Handlers are safe for arbitrary concurrency —
// all simulation state is per-request, and the cache is lock-protected
// with immutable values.
type Server struct {
	cache   *bench.Cache
	limits  Limits
	metrics *Metrics
	mux     *http.ServeMux
	// gate is the weighted in-flight admission gate (admit.go).
	gate *gate
	// fault is Options.Fault (nil in production).
	fault func(stage string) error
	// logger/slowThreshold drive the per-request slog line (Options).
	logger        *slog.Logger
	slowThreshold time.Duration
	// draining flips once StartDrain is called: /healthz answers 503
	// for load balancers and new /v1/* work is refused.
	draining atomic.Bool
	// stopCtx ends when CancelInFlight is called at the drain deadline;
	// every request context is derived to cancel with it, which reaches
	// the simulations through interp.Sim.Cancel.
	stopCtx    context.Context
	stopCancel context.CancelFunc
	// baseCfg is the template every request's bench.Config derives
	// from: the paper's machine, with the machine-config fingerprint
	// precomputed once so per-request cache keys never build a
	// throwaway machine.
	baseCfg bench.Config
}

// New builds a Server.
func New(opts Options) *Server {
	s := &Server{
		cache:         bench.NewCacheSized(opts.CacheBytes),
		limits:        opts.Limits.withDefaults(),
		metrics:       newMetrics(),
		mux:           http.NewServeMux(),
		fault:         opts.Fault,
		logger:        opts.Logger,
		slowThreshold: opts.SlowThreshold,
	}
	s.gate = newGate(int64(s.limits.MaxInFlight), s.limits.MaxQueue)
	s.stopCtx, s.stopCancel = context.WithCancel(context.Background())
	s.baseCfg = bench.DefaultConfig().PrecomputeMachineEnv()
	s.baseCfg.Cache = s.cache
	s.mux.HandleFunc("/v1/compile", s.instrument("compile", s.handleCompile))
	s.mux.HandleFunc("/v1/translate", s.instrument("translate", s.handleTranslate))
	s.mux.HandleFunc("/v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("/v1/grid", s.instrument("grid", s.handleGrid))
	s.mux.HandleFunc("/v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the process-lifetime cache (stats, tests).
func (s *Server) Cache() *bench.Cache { return s.cache }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Limits reports the effective admission policy.
func (s *Server) Limits() Limits { return s.limits }

// Overload reports the admission gate's current state.
func (s *Server) Overload() OverloadSnapshot { return s.gate.stats() }

// StartDrain flips the server into draining: /healthz answers 503 so
// load balancers stop routing here, and new /v1/* requests are refused
// with 503 + Retry-After. In-flight requests keep running — call
// CancelInFlight when the drain deadline expires to cut them off.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// CancelInFlight cancels every in-flight request context (and through
// it, every running simulation via interp.Sim.Cancel). The cache stays
// consistent: canceled computations are dropped, never cached.
func (s *Server) CancelInFlight() { s.stopCancel() }

// httpError is a handler failure with its HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errBadRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError emits the JSON error envelope (unless the stream already
// started, in which case the transport has to carry the bad news).
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(errorBody{Error: msg, Status: status})
	w.Write(append(b, '\n'))
}

// writeJSON emits one deterministic JSON document: marshaled with
// encoding/json's stable field order, one trailing newline.
func writeJSON(w http.ResponseWriter, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
	return nil
}

// StreamError is the terminal NDJSON record a streaming endpoint emits
// when a failure cuts the stream short after lines have already been
// written (the status line is long gone, so the error has to travel in
// band). Clients distinguish truncation from completion by its
// presence: a stream that ends without one completed normally, a
// stream that ends with one was aborted at that point.
type StreamError struct {
	StreamError string `json:"stream_error"`
	Status      int    `json:"status"`
}

// writeStreamError appends the terminal error record to an NDJSON
// stream already in progress.
func writeStreamError(w http.ResponseWriter, status int, msg string) {
	b, _ := json.Marshal(StreamError{StreamError: msg, Status: status})
	w.Write(append(b, '\n'))
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the request-scope control plane:
// the request id (X-Request-Id, set before any body bytes so every
// response carries it), the span recorder, metrics bookkeeping
// (request count, in-flight gauge, latency histogram, status counts),
// the structured request log line, the draining refusal for /v1/*
// work, and the panic boundary — a panicking handler answers 500 with
// the error envelope (or the terminal stream record, if the NDJSON
// stream had started) instead of killing the daemon.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := nextRequestID()
		sr := newSpanRecorder(start)
		r = r.WithContext(withSpans(r.Context(), sr))
		s.metrics.requestStarted(name)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sw.Header().Set("X-Request-Id", rid)
		defer func() {
			if v := recover(); v != nil {
				s.metrics.panicked()
				msg := fmt.Sprintf("panic: %v", v)
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, msg)
				} else if sw.streaming() {
					writeStreamError(sw, http.StatusInternalServerError, msg)
				}
			}
			d := time.Since(start)
			s.metrics.requestFinished(name, sw.status, d)
			s.logRequest(r, name, rid, sw.status, d, sr)
		}()
		if s.draining.Load() && strings.HasPrefix(r.URL.Path, "/v1/") {
			sw.Header().Set("Retry-After", "1")
			writeError(sw, http.StatusServiceUnavailable, "draining: server is shutting down")
			return
		}
		h(sw, r)
	}
}

// logRequest emits the per-request slog line: Info normally, Warn with
// the span tree when the request crossed the slow threshold, Error on
// 5xx.
func (s *Server) logRequest(r *http.Request, name, rid string, status int, d time.Duration, sr *spanRecorder) {
	if s.logger == nil {
		return
	}
	slow := s.slowThreshold > 0 && d >= s.slowThreshold
	level := slog.LevelInfo
	switch {
	case status >= http.StatusInternalServerError:
		level = slog.LevelError
	case slow:
		level = slog.LevelWarn
	}
	if !s.logger.Enabled(r.Context(), level) {
		return
	}
	args := []any{
		slog.String("request_id", rid),
		slog.String("endpoint", name),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Int64("duration_us", d.Microseconds()),
	}
	if slow {
		args = append(args, slog.Bool("slow", true), slog.Any("spans", sr.tree()))
	}
	s.logger.Log(r.Context(), level, "request", args...)
}

// statusWriter captures the response status for metrics and whether
// anything was written (the panic boundary must not WriteHeader twice).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.wrote = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// streaming reports whether the response is an NDJSON stream (where a
// late failure must travel as a terminal record, not a status).
func (w *statusWriter) streaming() bool {
	return strings.HasPrefix(w.Header().Get("Content-Type"), "application/x-ndjson")
}

// Flush forwards to the underlying writer so NDJSON streams flush
// through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
