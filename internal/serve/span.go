package serve

// Request-scoped observability: every request gets an X-Request-Id and
// a span recorder that times the stages it passes through — decode,
// admission-queue wait, then the compute stages the bench harness
// actually executes (compile, translate, baseline, simulate, profile;
// cache hits produce no compute span, which is exactly what a request
// timeline should show). The span tree rides back in the response
// envelope when the client opts in with ?spans=1, and is logged with
// the slog line when a request crosses the slow threshold.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request IDs are "<process prefix>-<seq>": an 8-hex-digit random
// prefix distinguishes daemon restarts, the sequence number orders
// requests within one process. The format is asserted by the load-test
// harness (loadtest.RequestIDPattern).
var (
	ridPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Int64
)

func nextRequestID() string {
	return ridPrefix + "-" + strconv.FormatInt(ridSeq.Add(1), 10)
}

// Span is one timed step of a request. Times are offsets from the
// moment the server accepted the request, in microseconds — wall
// clock, so unlike simulation results they vary run to run, which is
// why spans are opt-in and never part of the deterministic envelope.
type Span struct {
	Name     string  `json:"name"`
	StartUs  int64   `json:"start_us"`
	DurUs    int64   `json:"dur_us"`
	Children []*Span `json:"children,omitempty"`
}

// LogValue renders the tree as "name(durµs)[children...]" so the slow-
// request slog line stays one readable attribute instead of a pointer
// dump.
func (sp *Span) LogValue() slog.Value {
	if sp == nil {
		return slog.StringValue("")
	}
	var b strings.Builder
	sp.format(&b)
	return slog.StringValue(b.String())
}

func (sp *Span) format(b *strings.Builder) {
	b.WriteString(sp.Name)
	b.WriteByte('(')
	b.WriteString(strconv.FormatInt(sp.DurUs, 10))
	b.WriteString("us)")
	if len(sp.Children) > 0 {
		b.WriteByte('[')
		for i, c := range sp.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.format(b)
		}
		b.WriteByte(']')
	}
}

// spanRecorder accumulates a request's span tree. Starts nest: a span
// opened while another is open becomes its child (the compile span
// fires inside the translate stage, so it nests under it). Safe for
// concurrent use — batch items share their request's recorder.
type spanRecorder struct {
	mu    sync.Mutex
	t0    time.Time
	root  *Span
	stack []*Span
}

func newSpanRecorder(t0 time.Time) *spanRecorder {
	root := &Span{Name: "request"}
	return &spanRecorder{t0: t0, root: root, stack: []*Span{root}}
}

// start opens a named child span under the innermost open span and
// returns its closer. Nil-safe: handlers exercised without the
// instrument wrapper (direct unit tests) record nothing.
func (sr *spanRecorder) start(name string) func() {
	if sr == nil {
		return func() {}
	}
	sr.mu.Lock()
	sp := &Span{Name: name, StartUs: time.Since(sr.t0).Microseconds()}
	parent := sr.stack[len(sr.stack)-1]
	parent.Children = append(parent.Children, sp)
	sr.stack = append(sr.stack, sp)
	sr.mu.Unlock()
	return func() {
		sr.mu.Lock()
		sp.DurUs = time.Since(sr.t0).Microseconds() - sp.StartUs
		// Remove sp from the open stack wherever it sits: closes can
		// arrive out of order when batch workers interleave.
		for i := len(sr.stack) - 1; i >= 1; i-- {
			if sr.stack[i] == sp {
				sr.stack = append(sr.stack[:i], sr.stack[i+1:]...)
				break
			}
		}
		sr.mu.Unlock()
	}
}

// tree closes the root over the elapsed time so far and returns it.
func (sr *spanRecorder) tree() *Span {
	if sr == nil {
		return nil
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.root.DurUs = time.Since(sr.t0).Microseconds()
	return sr.root
}

// spanCtxKey carries the request's recorder through context, so the
// bench harness seam (bench.Config.Span) and the handlers reach the
// same tree the instrument wrapper logs.
type spanCtxKey struct{}

func withSpans(ctx context.Context, sr *spanRecorder) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sr)
}

// spansFrom returns the request's recorder, or nil (every use is
// nil-safe) outside an instrumented request.
func spansFrom(ctx context.Context) *spanRecorder {
	sr, _ := ctx.Value(spanCtxKey{}).(*spanRecorder)
	return sr
}
