package serve

// The robustness suite: overload shedding, drain semantics, panic
// isolation and mid-stream failure signaling exercised over real HTTP.
// Each test builds its own server so gate capacities, fault hooks and
// drain state never leak between cases. The fault hooks play the role
// the chaos injector plays at volume — here they are deterministic
// single-shot faults so each failure mode can be asserted exactly.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// checkGolden compares got against testdata/golden/<name>.golden,
// rewriting the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("response diverged from golden %s:\n got: %s\nwant: %s", path, got, want)
	}
}

// doResp is do with access to the response headers.
func doResp(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestShedWhenSaturated pins the overload contract: with one slot and
// no wait queue, a second request must be shed with 503 + Retry-After
// while the first holds the slot, and the gate counters must record
// both the peak occupancy and the shed.
func TestShedWhenSaturated(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	s, ts := newTestServer(t, Options{
		Limits: Limits{MaxInFlight: 1, MaxQueue: -1},
		Fault: func(stage string) error {
			if stage == "compile" && once.CompareAndSwap(false, true) {
				close(entered)
				<-release
			}
			return nil
		},
	})

	firstDone := make(chan struct {
		status int
		body   string
	}, 1)
	go func() {
		status, body := do(t, ts, "POST", "/v1/compile", `{"workload":"pi","cores":2,"scale":0.01}`)
		firstDone <- struct {
			status int
			body   string
		}{status, body}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the compile stage")
	}

	// The slot is held; the next request must be shed, not queued.
	resp := doResp(t, ts.URL+"/v1/compile", `{"workload":"dot","cores":2,"scale":0.01}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated request: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response carries no Retry-After header")
	}

	close(release)
	first := <-firstDone
	if first.status != http.StatusOK {
		t.Errorf("slot-holding request: status %d %s, want 200", first.status, first.body)
	}

	ov := s.Overload()
	if ov.Shed < 1 {
		t.Errorf("gate recorded %d sheds, want >= 1", ov.Shed)
	}
	if ov.PeakInUse != 1 || ov.SlotCapacity != 1 {
		t.Errorf("gate peak %d / capacity %d, want 1/1", ov.PeakInUse, ov.SlotCapacity)
	}
	if ov.SlotsInUse != 0 {
		t.Errorf("gate still holds %d slots after all requests finished", ov.SlotsInUse)
	}
}

// TestDrainingRefusal pins the drain contract: once StartDrain fires,
// /healthz answers 503 draining (the load-balancer signal), /v1/* work
// is refused with Retry-After, and /metrics keeps serving with the
// draining flag set.
func TestDrainingRefusal(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	if status, body := do(t, ts, "GET", "/healthz", ""); status != http.StatusOK {
		t.Fatalf("healthz before drain: %d %q", status, body)
	}

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	status, body := do(t, ts, "GET", "/healthz", "")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("healthz during drain: %d %q, want 503 draining", status, body)
	}
	resp := doResp(t, ts.URL+"/v1/compile", `{"workload":"pi","cores":2,"scale":0.01}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("v1 during drain: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("drain refusal carries no Retry-After header")
	}
	status, body = do(t, ts, "GET", "/metrics", "")
	if status != http.StatusOK {
		t.Errorf("metrics during drain: %d, want 200", status)
	}
	if !strings.Contains(body, `"draining":true`) {
		t.Errorf("metrics during drain missing draining flag:\n%s", body)
	}
}

// TestPanicIsolation pins panic hygiene end to end: a compute panic
// answers a clean 500 envelope without killing the server, the metrics
// panic counter moves, and — because panicked computations are dropped
// from the cache, never memoized — the identical retry succeeds.
func TestPanicIsolation(t *testing.T) {
	var fired atomic.Bool
	_, ts := newTestServer(t, Options{
		Fault: func(stage string) error {
			if stage == "simulate" && fired.CompareAndSwap(false, true) {
				panic("test: injected simulate panic")
			}
			return nil
		},
	})

	body := `{"workload":"pi","cores":2,"scale":0.01,"policy":"size"}`
	status, respBody := do(t, ts, "POST", "/v1/simulate", body)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked simulate: status %d %s, want 500", status, respBody)
	}
	if !strings.Contains(respBody, "injected simulate panic") {
		t.Errorf("panic envelope does not name the panic: %s", respBody)
	}

	// The panicked computation must not have been cached: the same
	// request (fault now spent) recomputes and succeeds.
	status, respBody = do(t, ts, "POST", "/v1/simulate", body)
	if status != http.StatusOK {
		t.Fatalf("retry after panic: status %d %s, want 200 — panicked computation was cached", status, respBody)
	}

	_, metrics := do(t, ts, "GET", "/metrics", "")
	var snap struct {
		Panics int64 `json:"panics"`
	}
	if err := json.Unmarshal([]byte(metrics), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, metrics)
	}
	if snap.Panics < 1 {
		t.Errorf("metrics panics = %d, want >= 1", snap.Panics)
	}
}

// TestBatchItemPanic pins the worker-pool panic boundary: a panic while
// computing one batch item costs exactly that item — a 500-status error
// line in its slot — and the other items still answer normally.
func TestBatchItemPanic(t *testing.T) {
	var fired atomic.Bool
	_, ts := newTestServer(t, Options{
		Fault: func(stage string) error {
			if stage == "simulate" && fired.CompareAndSwap(false, true) {
				panic("test: batch item panic")
			}
			return nil
		},
	})
	status, body := do(t, ts, "POST", "/v1/batch",
		`{"items":[{"op":"compile","workload":"pi","cores":2,"scale":0.01},{"op":"simulate","workload":"pi","cores":2,"scale":0.01}]}`)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d %s", status, body)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("batch answered %d lines, want 2:\n%s", len(lines), body)
	}
	var l0, l1 BatchLine
	if err := json.Unmarshal([]byte(lines[0]), &l0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &l1); err != nil {
		t.Fatal(err)
	}
	if l0.Error != "" || l0.Compile == nil {
		t.Errorf("compile item should be untouched: %s", lines[0])
	}
	if l1.Status != http.StatusInternalServerError || !strings.Contains(l1.Error, "batch item panic") {
		t.Errorf("panicked item: status %d error %q, want 500 naming the panic", l1.Status, l1.Error)
	}
}

// TestGridTerminalRecord pins mid-stream failure signaling against a
// golden stream: a grid whose second cell is cut by the request
// deadline must answer the first cell's line followed by the terminal
// stream_error record — never silent truncation. The fault hook runs
// the grid at parallel=1 and parks the second cell's simulate stage
// until well past the deadline, making the stream deterministic enough
// to golden. (The drain-cancel flavor of the same cut is covered end to
// end by TestCmdHsmccdDrain; it shares this code path through
// withDeadline.)
func TestGridTerminalRecord(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var visits atomic.Int64
	_, ts := newTestServer(t, Options{
		Fault: func(stage string) error {
			if stage == "simulate" && visits.Add(1) == 2 {
				close(entered)
				<-release
			}
			return nil
		},
	})

	req, err := http.NewRequest("POST", ts.URL+"/v1/grid", strings.NewReader(
		`{"grid":{"name":"t","workloads":["pi"],"cores":[1,2],"policies":["size"],"scale":0.01},"parallel":1,"deadline_ms":300}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid: status %d", resp.StatusCode)
	}

	r := bufio.NewReader(resp.Body)
	line1, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("first cell line: %v", err)
	}

	// The second cell is parked at its simulate stage; hold it until
	// the 300ms request deadline has long expired, then let it resume
	// into the dead context.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("second cell never reached the simulate stage")
	}
	time.Sleep(700 * time.Millisecond)
	close(release)

	var rest strings.Builder
	for {
		line, err := r.ReadString('\n')
		rest.WriteString(line)
		if err != nil {
			break
		}
	}
	got := line1 + rest.String()
	checkGolden(t, "grid_terminal_record", fmt.Sprintf("STREAM 200\n%s", got))

	// Structural assertions on top of the golden bytes: the last line
	// must be the terminal record, not a cell result.
	var term StreamError
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &term); err != nil {
		t.Fatalf("terminal line not a stream_error record: %v\n%s", err, got)
	}
	if term.Status != http.StatusGatewayTimeout || term.StreamError == "" {
		t.Errorf("terminal record = %+v, want status 504 with a message", term)
	}
}
