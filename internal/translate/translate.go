// Package translate implements Stage 5 of the paper's framework: the
// source-to-source translator that converts a well-defined Pthread program
// into an RCCE multiprocess program for the SCC (thesis §4.5 and
// Appendices A-B, Algorithms 4-10).
//
// The translation is organised as a series of passes over the IR, mirroring
// the thesis's CETUS pass structure:
//
//  1. ThreadsToProcesses (Algorithm 4) — replace pthread_create launches
//     with direct calls executed by every core, using the core ID where the
//     thread ID was used; thread-specific launches are wrapped in
//     `if (myID == k)` guards.
//  2. JoinsToBarriers (Algorithm 5, as realised in Example Code 4.2) —
//     remove pthread_join calls; a join loop becomes an RCCE_barrier with
//     the loop's remaining statements hoisted out, their induction variable
//     replaced by the core ID.
//  3. SelfToUE (Algorithm 6) — pthread_self() becomes RCCE_ue().
//  4. MutexToLocks — pthread mutex operations become the SCC's test-and-set
//     register lock API (RCCE_acquire_lock / RCCE_release_lock).
//  5. SharedToExplicit (applies Stage 4) — implicitly shared globals become
//     explicitly shared allocations: arrays turn into pointers initialised
//     with RCCE_shmalloc or RCCE_mpbmalloc according to the partitioner's
//     placement; shared global scalars are promoted to pointers and their
//     uses rewritten to dereferences; shared global pointers receive
//     backing allocations for their pointees (Example 4.2's `ptr`).
//  6. RemovePthreadTypes (Algorithm 7) and RemovePthreadAPI (Algorithm 8) —
//     delete leftover pthread declarations and calls.
//  7. MainToRCCEApp + AddInit/AddFinalize (Algorithms 9-10) — rename main to
//     RCCE_APP, insert RCCE_init/RCCE_finalize and the myID = RCCE_ue()
//     prologue, and swap <pthread.h> for "RCCE.h".
package translate

import (
	"fmt"

	"hsmcc/internal/analysis/pointsto"
	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
	"hsmcc/internal/partition"
)

// CoreIDName is the variable the translated program reads its rank from
// (Example Code 4.2 names it myID).
const CoreIDName = "myID"

// Options configures the translation.
type Options struct {
	// Cores is the number of UEs the program will run on (informational;
	// the generated code reads its rank at runtime via RCCE_ue()).
	Cores int
}

// Unit carries one translation through the passes.
type Unit struct {
	File   *ast.File
	Points *pointsto.Result
	Part   *partition.Result
	Opts   Options

	// Main is the program's main function (renamed late in the pipeline).
	Main *ast.FuncDecl
	// Log records one line per pass describing what it did.
	Log []string
	// Allocs records the explicit shared allocations SharedToExplicit
	// emitted, in emission order — which is exactly the runtime call
	// order of RCCE_shmalloc/RCCE_mpbmalloc in the translated program
	// (the allocations sit at the top of RCCE_APP and every region
	// counts its own sequence). The access profiler uses this to label
	// the allocator's address ranges with their source variables.
	Allocs []AllocSite

	// mutexIDs assigns lock register indices to mutex variables.
	mutexIDs map[string]int
}

// AllocSite is one emitted shared allocation: the variable whose
// backing store it creates and the region it targets. (Sizes are not
// recorded here — the profiler labels ranges with the sizes the RCCE
// allocator actually observes at runtime.)
type AllocSite struct {
	Var    string
	OnChip bool
}

// Pass is one IR transformation.
type Pass interface {
	Name() string
	Run(u *Unit) error
}

// Passes returns the standard pass pipeline in execution order.
func Passes() []Pass {
	return []Pass{
		threadsToProcesses{},
		joinsToBarriers{},
		selfToUE{},
		mutexToLocks{},
		sharedToExplicit{},
		removePthreadTypes{},
		removePthreadAPI{},
		mainToRCCEApp{},
	}
}

// Translate runs all passes over file, mutating it into the RCCE program.
// points carries the Stage 1-3 results for file, and part the Stage 4
// placements of the shared variables.
func Translate(file *ast.File, points *pointsto.Result, part *partition.Result, opts Options) (*Unit, error) {
	if opts.Cores <= 0 {
		opts.Cores = 32
	}
	u := &Unit{
		File:     file,
		Points:   points,
		Part:     part,
		Opts:     opts,
		mutexIDs: make(map[string]int),
	}
	u.Main = file.FindFunc("main")
	if u.Main == nil {
		return nil, fmt.Errorf("translate: program has no main function")
	}
	for _, p := range Passes() {
		if err := p.Run(u); err != nil {
			return nil, fmt.Errorf("pass %s: %w", p.Name(), err)
		}
	}
	return u, nil
}

func (u *Unit) logf(format string, args ...any) {
	u.Log = append(u.Log, fmt.Sprintf(format, args...))
}

// sharedGlobals returns the shared variables that are globals, in
// declaration order.
func (u *Unit) sharedGlobals() []*scope.VarInfo {
	var out []*scope.VarInfo
	for _, v := range u.Points.Inter.Scope.Vars {
		if v.IsGlobal() && v.Current() == scope.Shared {
			out = append(out, v)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Statement rewriting helpers
// ---------------------------------------------------------------------------

// rewriteStmts maps f over every statement list in the function bodies of
// the file. f receives one statement and returns its replacement list:
// nil removes the statement, a single-element list replaces it, and
// returning the input keeps it. f is applied bottom-up (children first).
func rewriteStmts(file *ast.File, f func(ast.Stmt) []ast.Stmt) {
	for _, fn := range file.Funcs() {
		fn.Body.List = rewriteList(fn.Body.List, f)
	}
}

func rewriteList(list []ast.Stmt, f func(ast.Stmt) []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range list {
		rewriteChildren(s, f)
		out = append(out, f(s)...)
	}
	return out
}

func rewriteChildren(s ast.Stmt, f func(ast.Stmt) []ast.Stmt) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		n.List = rewriteList(n.List, f)
	case *ast.IfStmt:
		n.Then = rewriteSingle(n.Then, f)
		if n.Else != nil {
			n.Else = rewriteSingle(n.Else, f)
		}
	case *ast.ForStmt:
		n.Body = rewriteSingle(n.Body, f)
	case *ast.WhileStmt:
		n.Body = rewriteSingle(n.Body, f)
	case *ast.DoWhileStmt:
		n.Body = rewriteSingle(n.Body, f)
	case *ast.SwitchStmt:
		for _, c := range n.Cases {
			c.Body = rewriteList(c.Body, f)
		}
	}
}

// rewriteSingle rewrites a statement in single-statement position (loop or
// branch body): removal yields an empty statement, multiple replacements a
// block.
func rewriteSingle(s ast.Stmt, f func(ast.Stmt) []ast.Stmt) ast.Stmt {
	rewriteChildren(s, f)
	repl := f(s)
	switch len(repl) {
	case 0:
		return &ast.EmptyStmt{PosInfo: s.Pos()}
	case 1:
		return repl[0]
	default:
		return &ast.BlockStmt{List: repl, PosInfo: s.Pos()}
	}
}

// keep returns s unchanged (helper for rewrite callbacks).
func keep(s ast.Stmt) []ast.Stmt { return []ast.Stmt{s} }

// callIn returns the call expression if s is `f(...)` or `x = f(...)` with
// callee name, else nil.
func callIn(s ast.Stmt, name string) *ast.CallExpr {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	switch e := ast.Unparen(es.X).(type) {
	case *ast.CallExpr:
		if e.FuncName() == name {
			return e
		}
	case *ast.AssignExpr:
		if c, ok := ast.Unparen(e.RHS).(*ast.CallExpr); ok && c.FuncName() == name {
			return c
		}
	}
	return nil
}

// containsCall reports whether any statement in the subtree calls name.
func containsCall(s ast.Stmt, name string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && c.FuncName() == name {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Expression rewriting helpers
// ---------------------------------------------------------------------------

// RewriteExpr rebuilds e bottom-up, replacing each node with f(node).
func RewriteExpr(e ast.Expr, f func(ast.Expr) ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *ast.ParenExpr:
		n.X = RewriteExpr(n.X, f)
	case *ast.BinaryExpr:
		n.X = RewriteExpr(n.X, f)
		n.Y = RewriteExpr(n.Y, f)
	case *ast.AssignExpr:
		n.LHS = RewriteExpr(n.LHS, f)
		n.RHS = RewriteExpr(n.RHS, f)
	case *ast.UnaryExpr:
		n.X = RewriteExpr(n.X, f)
	case *ast.PostfixExpr:
		n.X = RewriteExpr(n.X, f)
	case *ast.IndexExpr:
		n.X = RewriteExpr(n.X, f)
		n.Index = RewriteExpr(n.Index, f)
	case *ast.CallExpr:
		n.Fun = RewriteExpr(n.Fun, f)
		for i := range n.Args {
			n.Args[i] = RewriteExpr(n.Args[i], f)
		}
	case *ast.CastExpr:
		n.X = RewriteExpr(n.X, f)
	case *ast.SizeofExpr:
		if n.X != nil {
			n.X = RewriteExpr(n.X, f)
		}
	case *ast.CondExpr:
		n.Cond = RewriteExpr(n.Cond, f)
		n.Then = RewriteExpr(n.Then, f)
		n.Else = RewriteExpr(n.Else, f)
	case *ast.CommaExpr:
		n.X = RewriteExpr(n.X, f)
		n.Y = RewriteExpr(n.Y, f)
	case *ast.MemberExpr:
		n.X = RewriteExpr(n.X, f)
	}
	return f(e)
}

// rewriteExprsInStmt applies f to every expression in the subtree of s.
func rewriteExprsInStmt(s ast.Stmt, f func(ast.Expr) ast.Expr) {
	switch n := s.(type) {
	case *ast.BlockStmt:
		for _, c := range n.List {
			rewriteExprsInStmt(c, f)
		}
	case *ast.DeclStmt:
		if n.Decl.Init != nil {
			n.Decl.Init = RewriteExpr(n.Decl.Init, f)
		}
		for i := range n.Decl.InitLst {
			n.Decl.InitLst[i] = RewriteExpr(n.Decl.InitLst[i], f)
		}
	case *ast.ExprStmt:
		n.X = RewriteExpr(n.X, f)
	case *ast.IfStmt:
		n.Cond = RewriteExpr(n.Cond, f)
		rewriteExprsInStmt(n.Then, f)
		if n.Else != nil {
			rewriteExprsInStmt(n.Else, f)
		}
	case *ast.ForStmt:
		if n.Init != nil {
			rewriteExprsInStmt(n.Init, f)
		}
		if n.Cond != nil {
			n.Cond = RewriteExpr(n.Cond, f)
		}
		if n.Post != nil {
			n.Post = RewriteExpr(n.Post, f)
		}
		rewriteExprsInStmt(n.Body, f)
	case *ast.WhileStmt:
		n.Cond = RewriteExpr(n.Cond, f)
		rewriteExprsInStmt(n.Body, f)
	case *ast.DoWhileStmt:
		rewriteExprsInStmt(n.Body, f)
		n.Cond = RewriteExpr(n.Cond, f)
	case *ast.SwitchStmt:
		n.Tag = RewriteExpr(n.Tag, f)
		for _, c := range n.Cases {
			if c.Value != nil {
				c.Value = RewriteExpr(c.Value, f)
			}
			for _, cs := range c.Body {
				rewriteExprsInStmt(cs, f)
			}
		}
	case *ast.ReturnStmt:
		if n.Result != nil {
			n.Result = RewriteExpr(n.Result, f)
		}
	}
}

// substIdent replaces every use of the symbol named name in s with a fresh
// copy of repl.
func substIdent(s ast.Stmt, name string, repl func() ast.Expr) {
	rewriteExprsInStmt(s, func(e ast.Expr) ast.Expr {
		if id, ok := e.(*ast.Ident); ok && id.Name == name {
			return repl()
		}
		return e
	})
}

// ident builds an identifier expression.
func ident(name string) *ast.Ident { return &ast.Ident{Name: name} }

// intLit builds an integer literal expression.
func intLit(v int64) *ast.IntLit {
	return &ast.IntLit{Value: v, Text: fmt.Sprintf("%d", v), Typ: types.IntType}
}

// callStmt builds `name(args...);`.
func callStmt(name string, args ...ast.Expr) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{Fun: ident(name), Args: args}}
}

// assignStmt builds `lhs = rhs;`.
func assignStmt(lhs, rhs ast.Expr) ast.Stmt {
	return &ast.ExprStmt{X: &ast.AssignExpr{Op: token.Assign, LHS: lhs, RHS: rhs}}
}
