package translate

import (
	"fmt"
	"strings"

	"hsmcc/internal/cc/ast"
	"hsmcc/internal/cc/token"
	"hsmcc/internal/cc/types"
	"hsmcc/internal/partition"
)

// ---------------------------------------------------------------------------
// Pass 1: ThreadsToProcesses (Algorithm 4)
// ---------------------------------------------------------------------------

type threadsToProcesses struct{}

func (threadsToProcesses) Name() string { return "ThreadsToProcesses" }

// Run replaces pthread_create sites with direct calls. A launch in a loop
// stands for "one thread per core": the new call is inserted before the
// loop with the thread-ID argument replaced by the core ID, and the loop
// is dropped if nothing else remains in it. Launches outside loops are
// thread-specific tasks: call k is wrapped in `if (myID == k)` so it
// executes on exactly one core (thesis §4.5's hash-table isolation).
func (threadsToProcesses) Run(u *Unit) error {
	// Launch loops first. rewriteStmts visits children before parents, so
	// a single combined pass would rewrite the pthread_create statement
	// inside the loop before the loop handler could recognise the loop as
	// a launch loop.
	rewriteStmts(u.File, func(s ast.Stmt) []ast.Stmt {
		switch n := s.(type) {
		case *ast.ForStmt:
			return rewriteLaunchLoop(u, n, s)
		case *ast.WhileStmt:
			return rewriteLaunchLoopW(u, n, s)
		}
		return keep(s)
	})
	// Remaining standalone launches are thread-specific tasks: call k runs
	// only on core k (thesis §4.5's hash-table isolation).
	order := 0
	rewriteStmts(u.File, func(s ast.Stmt) []ast.Stmt {
		call := callIn(s, "pthread_create")
		if call == nil {
			return keep(s)
		}
		fnName := launchFuncName(call)
		if fnName == "" {
			return keep(s)
		}
		newCall := &ast.CallExpr{Fun: ident(fnName), Args: []ast.Expr{threadArg(u, call, nil)}}
		guarded := &ast.IfStmt{
			Cond: &ast.BinaryExpr{Op: token.EqEq, X: ident(CoreIDName), Y: intLit(int64(order))},
			Then: &ast.BlockStmt{List: []ast.Stmt{&ast.ExprStmt{X: newCall}}},
		}
		u.logf("ThreadsToProcesses: launch of %s -> guarded call on core %d", fnName, order)
		order++
		return []ast.Stmt{guarded}
	})
	// Completeness check: a pthread_create this pass could not translate
	// (a computed function pointer, a call with too few arguments) must
	// fail the translation — the later cleanup passes would otherwise
	// delete the launch and silently change the program's meaning.
	var leftover error
	ast.Inspect(u.File, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && c.FuncName() == "pthread_create" && leftover == nil {
			leftover = fmt.Errorf("%s: cannot translate pthread_create: thread function is not a plain identifier", c.Pos())
		}
		return leftover == nil
	})
	return leftover
}

// rewriteLaunchLoop handles a for-loop containing pthread_create: the
// canonical divide-and-conquer launch pattern. The loop is replaced by the
// direct call with the core ID as the argument; any other statements in
// the loop body are preserved after the call with the induction variable
// substituted by the core ID.
func rewriteLaunchLoop(u *Unit, n *ast.ForStmt, s ast.Stmt) []ast.Stmt {
	if !containsCall(s, "pthread_create") {
		return keep(s)
	}
	indVar := loopIndexName(n)
	var out []ast.Stmt
	var body []ast.Stmt
	if b, ok := n.Body.(*ast.BlockStmt); ok {
		body = b.List
	} else {
		body = []ast.Stmt{n.Body}
	}
	for _, bs := range body {
		if call := callIn(bs, "pthread_create"); call != nil {
			fnName := launchFuncName(call)
			if fnName == "" {
				// Not translatable (e.g. a computed function pointer):
				// keep the call so the completeness check can report it.
				out = append(out, bs)
				continue
			}
			newCall := &ast.CallExpr{Fun: ident(fnName), Args: []ast.Expr{threadArg(u, call, &indVar)}}
			out = append(out, &ast.ExprStmt{X: newCall})
			u.logf("ThreadsToProcesses: loop launch of %s -> direct call with core ID", fnName)
			continue
		}
		// Keep other statements, with the induction variable replaced by
		// the core ID (each core performs its own slice of the work).
		if indVar != "" {
			substIdent(bs, indVar, func() ast.Expr { return ident(CoreIDName) })
		}
		out = append(out, bs)
	}
	return out
}

func rewriteLaunchLoopW(u *Unit, n *ast.WhileStmt, s ast.Stmt) []ast.Stmt {
	if !containsCall(s, "pthread_create") {
		return keep(s)
	}
	// While-loop launches are rare; handle like the for case without an
	// induction variable.
	var out []ast.Stmt
	var body []ast.Stmt
	if b, ok := n.Body.(*ast.BlockStmt); ok {
		body = b.List
	} else {
		body = []ast.Stmt{n.Body}
	}
	for _, bs := range body {
		if call := callIn(bs, "pthread_create"); call != nil {
			if fnName := launchFuncName(call); fnName != "" {
				out = append(out, &ast.ExprStmt{X: &ast.CallExpr{
					Fun: ident(fnName), Args: []ast.Expr{threadArg(u, call, nil)},
				}})
			}
			continue
		}
		out = append(out, bs)
	}
	return out
}

// launchFuncName extracts the thread function from pthread_create arg 3.
func launchFuncName(call *ast.CallExpr) string {
	if len(call.Args) < 4 {
		return ""
	}
	switch n := ast.Unparen(call.Args[2]).(type) {
	case *ast.Ident:
		return n.Name
	case *ast.CastExpr:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			return id.Name
		}
	case *ast.UnaryExpr:
		if n.Op == token.Amp {
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

// threadArg builds the argument for the direct call. When the original
// argument references the loop induction variable (the thread ID), it is
// replaced by the core ID (Algorithm 4's UseCoreID); otherwise the original
// argument is preserved.
func threadArg(u *Unit, call *ast.CallExpr, indVar *string) ast.Expr {
	arg := call.Args[3]
	usesInd := false
	if indVar != nil && *indVar != "" {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == *indVar {
				usesInd = true
			}
			return true
		})
	}
	if usesInd {
		return &ast.CastExpr{To: types.PointerTo(types.VoidType), X: &ast.ParenExpr{X: ident(CoreIDName)}}
	}
	return arg
}

// loopIndexName extracts the induction variable of a canonical for loop.
func loopIndexName(n *ast.ForStmt) string {
	switch in := n.Init.(type) {
	case *ast.ExprStmt:
		if a, ok := ast.Unparen(in.X).(*ast.AssignExpr); ok {
			if id, ok := ast.Unparen(a.LHS).(*ast.Ident); ok {
				return id.Name
			}
		}
	case *ast.DeclStmt:
		return in.Decl.Name
	}
	return ""
}

// ---------------------------------------------------------------------------
// Pass 2: JoinsToBarriers (Algorithm 5 / Example 4.2)
// ---------------------------------------------------------------------------

type joinsToBarriers struct{}

func (joinsToBarriers) Name() string { return "JoinsToBarriers" }

func (joinsToBarriers) Run(u *Unit) error {
	// Join loops first (see ThreadsToProcesses for why loops must be
	// handled before the standalone case: rewrites run children-first).
	rewriteStmts(u.File, func(s ast.Stmt) []ast.Stmt {
		n, ok := s.(*ast.ForStmt)
		if !ok || !containsCall(s, "pthread_join") {
			return keep(s)
		}
		indVar := loopIndexName(n)
		out := []ast.Stmt{barrierStmt()}
		var body []ast.Stmt
		if b, ok := n.Body.(*ast.BlockStmt); ok {
			body = b.List
		} else {
			body = []ast.Stmt{n.Body}
		}
		for _, bs := range body {
			if callIn(bs, "pthread_join") != nil {
				continue
			}
			if indVar != "" {
				substIdent(bs, indVar, func() ast.Expr { return ident(CoreIDName) })
			}
			out = append(out, bs)
		}
		u.logf("JoinsToBarriers: join loop -> RCCE_barrier + %d hoisted stmts", len(out)-1)
		return out
	})
	// Remaining standalone joins become plain barriers.
	rewriteStmts(u.File, func(s ast.Stmt) []ast.Stmt {
		if callIn(s, "pthread_join") != nil {
			u.logf("JoinsToBarriers: standalone join -> RCCE_barrier")
			return []ast.Stmt{barrierStmt()}
		}
		return keep(s)
	})
	// Collapse consecutive barriers introduced by multiple joins.
	rewriteStmts(u.File, collapseBarriers())
	return nil
}

func barrierStmt() ast.Stmt {
	return callStmt("RCCE_barrier", &ast.UnaryExpr{Op: token.Amp, X: ident("RCCE_COMM_WORLD")})
}

// collapseBarriers removes a barrier immediately following another barrier.
func collapseBarriers() func(ast.Stmt) []ast.Stmt {
	var prevWasBarrier *bool
	b := false
	prevWasBarrier = &b
	return func(s ast.Stmt) []ast.Stmt {
		isBarrier := callIn(s, "RCCE_barrier") != nil
		if isBarrier && *prevWasBarrier {
			return nil
		}
		*prevWasBarrier = isBarrier
		return keep(s)
	}
}

// ---------------------------------------------------------------------------
// Pass 3: SelfToUE (Algorithm 6)
// ---------------------------------------------------------------------------

type selfToUE struct{}

func (selfToUE) Name() string { return "SelfToUE" }

func (selfToUE) Run(u *Unit) error {
	for _, fn := range u.File.Funcs() {
		rewriteExprsInStmt(fn.Body, func(e ast.Expr) ast.Expr {
			if c, ok := e.(*ast.CallExpr); ok && c.FuncName() == "pthread_self" {
				return &ast.CallExpr{Fun: ident("RCCE_ue"), PosInfo: c.PosInfo}
			}
			return e
		})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Pass 4: MutexToLocks
// ---------------------------------------------------------------------------

type mutexToLocks struct{}

func (mutexToLocks) Name() string { return "MutexToLocks" }

// Run maps each pthread mutex variable to a test-and-set lock index (the
// SCC provides one TAS register per core; mutex k uses core k's register)
// and rewrites lock/unlock calls to RCCE_acquire_lock/RCCE_release_lock.
func (mutexToLocks) Run(u *Unit) error {
	// Assign indices in declaration order.
	for _, d := range u.File.Globals() {
		if isPthreadType(d.Type, "pthread_mutex_t") {
			u.mutexIDs[d.Name] = len(u.mutexIDs)
		}
	}
	for _, fn := range u.File.Funcs() {
		rewriteExprsInStmt(fn.Body, func(e ast.Expr) ast.Expr {
			c, ok := e.(*ast.CallExpr)
			if !ok {
				return e
			}
			switch c.FuncName() {
			case "pthread_mutex_lock", "pthread_mutex_unlock":
				id := 0
				if len(c.Args) == 1 {
					if name := mutexVarName(c.Args[0]); name != "" {
						if idx, ok := u.mutexIDs[name]; ok {
							id = idx
						}
					}
				}
				newName := "RCCE_acquire_lock"
				if c.FuncName() == "pthread_mutex_unlock" {
					newName = "RCCE_release_lock"
				}
				return &ast.CallExpr{Fun: ident(newName), Args: []ast.Expr{intLit(int64(id))}, PosInfo: c.PosInfo}
			}
			return e
		})
	}
	if len(u.mutexIDs) > 0 {
		u.logf("MutexToLocks: %d mutexes mapped to TAS lock indices", len(u.mutexIDs))
	}
	return nil
}

func mutexVarName(e ast.Expr) string {
	switch n := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if n.Op == token.Amp {
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				return id.Name
			}
		}
	case *ast.Ident:
		return n.Name
	}
	return ""
}

func isPthreadType(t *types.Type, names ...string) bool {
	for t.Kind == types.Array || t.Kind == types.Pointer {
		t = t.Elem
	}
	if t.Kind != types.Opaque {
		return false
	}
	if len(names) == 0 {
		return strings.HasPrefix(t.Name, "pthread_")
	}
	for _, n := range names {
		if t.Name == n {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Pass 5: SharedToExplicit (application of Stage 4)
// ---------------------------------------------------------------------------

type sharedToExplicit struct{}

func (sharedToExplicit) Name() string { return "SharedToExplicit" }

// Run converts implicitly shared globals into explicit shared allocations:
//
//   - arrays:  `int sum[3];` -> `int *sum;` + `sum = (int*)RCCE_shmalloc(sizeof(int)*3);`
//   - scalars: `double total;` -> `double *total;` + allocation, with every
//     use of total rewritten to (*total);
//   - pointers: the declaration stays and a pointee backing allocation is
//     emitted (Example 4.2's `ptr=(int*)RCCE_shmalloc(sizeof(int)*1);`).
//
// The allocation call is RCCE_shmalloc for off-chip placements and
// RCCE_mpbmalloc for on-chip placements per the Stage 4 partitioner.
// Allocations are inserted at the top of main, after RCCE_init (which the
// final pass prepends).
func (sharedToExplicit) Run(u *Unit) error {
	var allocs []ast.Stmt
	emit := func(name string, fn string, elem *types.Type, count int) {
		allocs = append(allocs, allocAssign(name, fn, elem, count))
		u.Allocs = append(u.Allocs, AllocSite{Var: name, OnChip: fn == "RCCE_mpbmalloc"})
	}
	for _, v := range u.sharedGlobals() {
		d, ok := v.Sym.Decl.(*ast.VarDecl)
		if !ok {
			continue
		}
		// Pthread handle types (mutexes and friends) are shared data in
		// the analysis but are lowered to SCC lock registers by
		// MutexToLocks and then removed outright — never allocated.
		if isPthreadType(d.Type) {
			u.logf("SharedToExplicit: %s is a pthread handle, handled by lock lowering", d.Name)
			continue
		}
		placement := partition.OffChip
		if u.Part != nil {
			placement = u.Part.Placement(v)
		}
		allocFn := "RCCE_shmalloc"
		if placement == partition.OnChip {
			allocFn = "RCCE_mpbmalloc"
		}
		switch d.Type.Kind {
		case types.Array:
			elem := d.Type.Elem
			count := d.Type.Len
			// Rewrite the declaration to a pointer; drop initialisers
			// (the region is zeroed by the allocator, matching the
			// benchmarks' `= {0}` initialisers).
			d.Type = types.PointerTo(elem)
			d.Init = nil
			d.InitLst = nil
			v.Sym.Type = d.Type
			emit(d.Name, allocFn, elem, count)
			u.logf("SharedToExplicit: array %s -> %s (%s)", d.Name, allocFn, placement)
		case types.Pointer:
			// Backing store for the pointee.
			emit(d.Name, allocFn, d.Type.Elem, 1)
			u.logf("SharedToExplicit: pointer %s pointee backed by %s (%s)", d.Name, allocFn, placement)
		default:
			// Scalar promotion: T x -> T *x, uses become (*x).
			elem := d.Type
			init := d.Init
			d.Type = types.PointerTo(elem)
			d.Init = nil
			v.Sym.Type = d.Type
			emit(d.Name, allocFn, elem, 1)
			if init != nil {
				allocs = append(allocs, assignStmt(
					&ast.UnaryExpr{Op: token.Star, X: ident(d.Name)}, init))
			}
			name := d.Name
			for _, fn := range u.File.Funcs() {
				rewriteExprsInStmt(fn.Body, func(e ast.Expr) ast.Expr {
					if id, ok := e.(*ast.Ident); ok && id.Name == name && id.Sym == v.Sym {
						return &ast.ParenExpr{X: &ast.UnaryExpr{Op: token.Star, X: ident(name)}}
					}
					return e
				})
			}
			u.logf("SharedToExplicit: scalar %s promoted to pointer, uses rewritten (%s)", d.Name, placement)
		}
	}
	u.Main.Body.List = append(allocs, u.Main.Body.List...)
	return nil
}

// allocAssign builds `name = (T*)fn(sizeof(T)*count);`.
func allocAssign(name, fn string, elem *types.Type, count int) ast.Stmt {
	var size ast.Expr = &ast.SizeofExpr{OfType: elem, Typ: types.UIntType}
	if count != 1 {
		size = &ast.BinaryExpr{Op: token.Star, X: size, Y: intLit(int64(count))}
	}
	return assignStmt(ident(name), &ast.CastExpr{
		To: types.PointerTo(elem),
		X:  &ast.ParenExpr{X: &ast.CallExpr{Fun: ident(fn), Args: []ast.Expr{size}}},
	})
}

// ---------------------------------------------------------------------------
// Pass 6: RemovePthreadTypes (Algorithm 7)
// ---------------------------------------------------------------------------

type removePthreadTypes struct{}

func (removePthreadTypes) Name() string { return "RemovePthreadTypes" }

func (removePthreadTypes) Run(u *Unit) error {
	// Globals.
	var kept []ast.Node
	for _, d := range u.File.Decls {
		if vd, ok := d.(*ast.VarDecl); ok && isPthreadType(vd.Type) {
			u.logf("RemovePthreadTypes: removed global %s", vd.Name)
			continue
		}
		kept = append(kept, d)
	}
	u.File.Decls = kept
	// Locals.
	rewriteStmts(u.File, func(s ast.Stmt) []ast.Stmt {
		if ds, ok := s.(*ast.DeclStmt); ok && isPthreadType(ds.Decl.Type) {
			u.logf("RemovePthreadTypes: removed local %s", ds.Decl.Name)
			return nil
		}
		return keep(s)
	})
	return nil
}

// ---------------------------------------------------------------------------
// Pass 7: RemovePthreadAPI (Algorithm 8)
// ---------------------------------------------------------------------------

// pthreadAPISet is Algorithm 8's hash table of API calls to remove.
var pthreadAPISet = map[string]bool{
	"pthread_exit": true, "pthread_attr_init": true,
	"pthread_attr_destroy": true, "pthread_attr_setdetachstate": true,
	"pthread_mutex_init": true, "pthread_mutex_destroy": true,
	"pthread_cond_init": true, "pthread_cond_destroy": true,
	"pthread_create": true, "pthread_join": true,
}

type removePthreadAPI struct{}

func (removePthreadAPI) Name() string { return "RemovePthreadAPI" }

func (removePthreadAPI) Run(u *Unit) error {
	rewriteStmts(u.File, func(s ast.Stmt) []ast.Stmt {
		if es, ok := s.(*ast.ExprStmt); ok {
			if c, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && pthreadAPISet[c.FuncName()] {
				u.logf("RemovePthreadAPI: removed call to %s", c.FuncName())
				return nil
			}
			// `rc = pthread_xxx(...)` with the call as RHS.
			if a, ok := ast.Unparen(es.X).(*ast.AssignExpr); ok {
				if c, ok := ast.Unparen(a.RHS).(*ast.CallExpr); ok && pthreadAPISet[c.FuncName()] {
					u.logf("RemovePthreadAPI: removed assignment of %s", c.FuncName())
					return nil
				}
			}
		}
		return keep(s)
	})
	return nil
}

// ---------------------------------------------------------------------------
// Pass 8: MainToRCCEApp (+ Algorithms 9 and 10, includes swap)
// ---------------------------------------------------------------------------

type mainToRCCEApp struct{}

func (mainToRCCEApp) Name() string { return "MainToRCCEApp" }

func (mainToRCCEApp) Run(u *Unit) error {
	m := u.Main
	// Signature: int RCCE_APP(int *argc, char *argv[]).
	m.Name = "RCCE_APP"
	m.Result = types.IntType
	m.Params = []*ast.Param{
		{Name: "argc", Type: types.PointerTo(types.IntType)},
		{Name: "argv", Type: types.PointerTo(types.PointerTo(types.CharType))},
	}

	// Prologue: RCCE_init(&argc,&argv); <allocs already at top>; then
	// int myID; myID = RCCE_ue(); inserted after the allocations.
	prologue := []ast.Stmt{
		callStmt("RCCE_init",
			&ast.UnaryExpr{Op: token.Amp, X: ident("argc")},
			&ast.UnaryExpr{Op: token.Amp, X: ident("argv")}),
	}
	// Find the end of the alloc block (RCCE_shmalloc / RCCE_mpbmalloc
	// assignments inserted by SharedToExplicit sit at the top).
	allocEnd := 0
	for _, s := range m.Body.List {
		if es, ok := s.(*ast.ExprStmt); ok {
			if a, ok := ast.Unparen(es.X).(*ast.AssignExpr); ok {
				if hasAllocCall(a.RHS) {
					allocEnd++
					continue
				}
				if us, ok := ast.Unparen(a.LHS).(*ast.UnaryExpr); ok && us.Op == token.Star {
					// scalar init emitted right after its alloc
					allocEnd++
					continue
				}
			}
		}
		break
	}
	idDecl := &ast.DeclStmt{Decl: &ast.VarDecl{Name: CoreIDName, Type: types.IntType}}
	idInit := assignStmt(ident(CoreIDName), &ast.CallExpr{Fun: ident("RCCE_ue")})

	rest := m.Body.List[allocEnd:]
	newList := make([]ast.Stmt, 0, len(m.Body.List)+4)
	newList = append(newList, prologue...)
	newList = append(newList, m.Body.List[:allocEnd]...)
	newList = append(newList, idDecl, idInit)
	newList = append(newList, rest...)

	// RCCE_finalize before the final return (Algorithm 10), or appended.
	fin := callStmt("RCCE_finalize")
	if len(newList) > 0 {
		if _, isRet := newList[len(newList)-1].(*ast.ReturnStmt); isRet {
			last := newList[len(newList)-1]
			newList = append(newList[:len(newList)-1], fin, last)
		} else {
			newList = append(newList, fin)
		}
	}
	m.Body.List = newList

	// Includes: drop pthread.h, ensure "RCCE.h".
	var decls []ast.Node
	hasRCCE := false
	for _, d := range u.File.Decls {
		if inc, ok := d.(*ast.Include); ok {
			if inc.Path() == "pthread.h" {
				continue
			}
			if inc.Path() == "RCCE.h" {
				hasRCCE = true
			}
		}
		decls = append(decls, d)
	}
	if !hasRCCE {
		// Insert after the last include (or at the front).
		idx := 0
		for i, d := range decls {
			if _, ok := d.(*ast.Include); ok {
				idx = i + 1
			}
		}
		inc := &ast.Include{Text: `#include "RCCE.h"`}
		decls = append(decls[:idx], append([]ast.Node{inc}, decls[idx:]...)...)
	}
	u.File.Decls = decls
	u.logf("MainToRCCEApp: main -> RCCE_APP with init/finalize and %s prologue", CoreIDName)
	return nil
}

func hasAllocCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if name := c.FuncName(); name == "RCCE_shmalloc" || name == "RCCE_mpbmalloc" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
