package translate

import (
	"strings"
	"testing"

	"hsmcc/internal/analysis/interthread"
	"hsmcc/internal/analysis/pointsto"
	"hsmcc/internal/analysis/scope"
	"hsmcc/internal/cc/parser"
	"hsmcc/internal/cc/printer"
	"hsmcc/internal/cc/sema"
	"hsmcc/internal/partition"
)

// run translates src with the given policy and returns (unit, emitted C).
func run(t *testing.T, src string, policy partition.Policy, capacity int) (*Unit, string) {
	t.Helper()
	f, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	pts := pointsto.Analyze(interthread.Analyze(scope.Analyze(info)), pointsto.Options{})
	part := partition.Partition(pts.Inter.Scope.SharedVars(), capacity, policy)
	u, err := Translate(f, pts, part, Options{Cores: 4})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	return u, printer.Print(f)
}

const launchProgram = `
int data[4];
void *tf(void *tid) {
    int me = (int)tid;
    data[me] = me;
    pthread_exit(NULL);
}
int main() {
    pthread_t th[4];
    int t;
    for (t = 0; t < 4; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(th[t], NULL);
    }
    printf("%d\n", data[0]);
    return 0;
}`

func TestLaunchLoopBecomesDirectCall(t *testing.T) {
	_, out := run(t, launchProgram, partition.PolicyOffChipOnly, 0)
	if !strings.Contains(out, "tf((void *)(myID))") {
		t.Errorf("no direct call with core ID:\n%s", out)
	}
	if strings.Contains(out, "pthread_create") {
		t.Errorf("pthread_create survived:\n%s", out)
	}
	// The launch loop itself must be gone: no `t < 4` loop around tf.
	if strings.Count(out, "for (") != 0 {
		t.Errorf("launch/join loops should be gone:\n%s", out)
	}
}

func TestJoinLoopBecomesBarrier(t *testing.T) {
	_, out := run(t, launchProgram, partition.PolicyOffChipOnly, 0)
	if strings.Count(out, "RCCE_barrier(&RCCE_COMM_WORLD)") != 1 {
		t.Errorf("want exactly one barrier:\n%s", out)
	}
	if strings.Contains(out, "pthread_join") {
		t.Errorf("pthread_join survived:\n%s", out)
	}
}

func TestSharedArrayBecomesAllocation(t *testing.T) {
	_, out := run(t, launchProgram, partition.PolicyOffChipOnly, 0)
	if !strings.Contains(out, "int *data;") {
		t.Errorf("array decl not rewritten to pointer:\n%s", out)
	}
	if !strings.Contains(out, "data = (int *)(RCCE_shmalloc(sizeof(int) * 4))") {
		t.Errorf("missing shmalloc:\n%s", out)
	}
}

func TestOnChipPlacementUsesMPBAlloc(t *testing.T) {
	_, out := run(t, launchProgram, partition.PolicySizeAscending, 1<<20)
	if !strings.Contains(out, "RCCE_mpbmalloc") {
		t.Errorf("on-chip placement should emit RCCE_mpbmalloc:\n%s", out)
	}
}

func TestMainBecomesRCCEApp(t *testing.T) {
	_, out := run(t, launchProgram, partition.PolicyOffChipOnly, 0)
	for _, want := range []string{
		"int RCCE_APP(int *argc, char **argv)",
		"RCCE_init(&argc, &argv);",
		"myID = RCCE_ue();",
		"RCCE_finalize();",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// init must come before the allocations and the ue read before use.
	initIdx := strings.Index(out, "RCCE_init")
	allocIdx := strings.Index(out, "RCCE_shmalloc")
	ueIdx := strings.Index(out, "RCCE_ue()")
	callIdx := strings.Index(out, "tf((void *)")
	if !(initIdx < allocIdx && allocIdx < ueIdx && ueIdx < callIdx) {
		t.Errorf("ordering wrong: init=%d alloc=%d ue=%d call=%d", initIdx, allocIdx, ueIdx, callIdx)
	}
}

func TestStandaloneLaunchGuarded(t *testing.T) {
	_, out := run(t, `
int flag;
void *task(void *a) { flag = 1; pthread_exit(NULL); }
int main() {
    pthread_t x;
    pthread_create(&x, NULL, task, NULL);
    pthread_join(x, NULL);
    return flag;
}`, partition.PolicyOffChipOnly, 0)
	if !strings.Contains(out, "if (myID == 0)") {
		t.Errorf("standalone launch not core-guarded:\n%s", out)
	}
	if !strings.Contains(out, "task(NULL)") {
		t.Errorf("original argument not preserved:\n%s", out)
	}
}

func TestMutexLowering(t *testing.T) {
	_, out := run(t, `
pthread_mutex_t lock;
int counter;
void *w(void *a) {
    pthread_mutex_lock(&lock);
    counter = counter + 1;
    pthread_mutex_unlock(&lock);
    pthread_exit(NULL);
}
int main() {
    pthread_mutex_init(&lock, NULL);
    pthread_t th[4];
    int t;
    for (t = 0; t < 4; t++) {
        pthread_create(&th[t], NULL, w, (void *)t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(th[t], NULL);
    }
    pthread_mutex_destroy(&lock);
    return counter;
}`, partition.PolicyOffChipOnly, 0)
	if !strings.Contains(out, "RCCE_acquire_lock(0)") || !strings.Contains(out, "RCCE_release_lock(0)") {
		t.Errorf("mutex not lowered to TAS locks:\n%s", out)
	}
	if strings.Contains(out, "pthread_mutex") || strings.Contains(out, "lock") && strings.Contains(out, "pthread_mutex_t") {
		t.Errorf("mutex artifacts survived:\n%s", out)
	}
}

func TestSelfToUE(t *testing.T) {
	_, out := run(t, `
void *tf(void *a) {
    int me = (int)pthread_self();
    pthread_exit(NULL);
}
int main() {
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return 0;
}`, partition.PolicyOffChipOnly, 0)
	if !strings.Contains(out, "RCCE_ue()") || strings.Contains(out, "pthread_self") {
		t.Errorf("pthread_self not rewritten:\n%s", out)
	}
}

func TestScalarPromotion(t *testing.T) {
	_, out := run(t, `
int total;
void *tf(void *a) { total = total + 1; pthread_exit(NULL); }
int main() {
    pthread_t th[4];
    int t;
    for (t = 0; t < 4; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(th[t], NULL);
    }
    return total;
}`, partition.PolicyOffChipOnly, 0)
	if !strings.Contains(out, "int *total;") {
		t.Errorf("shared scalar not promoted to pointer:\n%s", out)
	}
	if !strings.Contains(out, "(*total) = (*total) + 1") {
		t.Errorf("scalar uses not rewritten to dereferences:\n%s", out)
	}
}

func TestPointerGlobalGetsBackingStore(t *testing.T) {
	_, out := run(t, `
int *ptr;
void *tf(void *a) { int v = *ptr; pthread_exit(NULL); }
int main() {
    int tmp = 1;
    ptr = &tmp;
    pthread_t x;
    pthread_create(&x, NULL, tf, NULL);
    pthread_join(x, NULL);
    return 0;
}`, partition.PolicyOffChipOnly, 0)
	if !strings.Contains(out, "ptr = (int *)(RCCE_shmalloc(sizeof(int)))") {
		t.Errorf("pointer pointee not backed:\n%s", out)
	}
}

func TestHoistedJoinBodyUsesCoreID(t *testing.T) {
	_, out := run(t, `
int sum[4];
void *tf(void *tid) {
    sum[(int)tid] = 1;
    pthread_exit(NULL);
}
int main() {
    pthread_t th[4];
    int t;
    for (t = 0; t < 4; t++) {
        pthread_create(&th[t], NULL, tf, (void *)t);
    }
    for (t = 0; t < 4; t++) {
        pthread_join(th[t], NULL);
        printf("%d\n", sum[t]);
    }
    return 0;
}`, partition.PolicyOffChipOnly, 0)
	if !strings.Contains(out, "printf(\"%d\\n\", sum[myID]);") {
		t.Errorf("hoisted statement must use myID:\n%s", out)
	}
}

func TestPassLogPopulated(t *testing.T) {
	u, _ := run(t, launchProgram, partition.PolicyOffChipOnly, 0)
	if len(u.Log) == 0 {
		t.Fatal("pass log empty")
	}
	joined := strings.Join(u.Log, "\n")
	for _, want := range []string{"ThreadsToProcesses", "JoinsToBarriers", "SharedToExplicit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("log missing %s:\n%s", want, joined)
		}
	}
}

func TestNoMainRejected(t *testing.T) {
	f, err := parser.Parse("t.c", "int f() { return 1; }")
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	pts := pointsto.Analyze(interthread.Analyze(scope.Analyze(info)), pointsto.Options{})
	if _, err := Translate(f, pts, nil, Options{}); err == nil {
		t.Error("expected error for missing main")
	}
}

// TestTranslationIdempotentOutput: the emitted program re-parses cleanly
// (the property the whole evaluation pipeline rests on).
func TestEmittedSourceReparses(t *testing.T) {
	_, out := run(t, launchProgram, partition.PolicySizeAscending, 1<<20)
	f, err := parser.Parse("emitted.c", out)
	if err != nil {
		t.Fatalf("emitted source does not parse: %v\n%s", err, out)
	}
	if _, err := sema.Analyze(f); err != nil {
		t.Fatalf("emitted source does not typecheck: %v\n%s", err, out)
	}
}

// TestUntranslatableLaunchRejected: a pthread_create through a computed
// function pointer cannot be converted; the translator must say so
// instead of silently dropping the launch (which the cleanup passes
// would otherwise do).
func TestUntranslatableLaunchRejected(t *testing.T) {
	f, err := parser.Parse("t.c", `
void *a(void *x) { return x; }
int main() {
    void *fp = a;
    pthread_t th;
    pthread_create(&th, NULL, fp + 1, NULL);
    pthread_join(th, NULL);
    return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	pts := pointsto.Analyze(interthread.Analyze(scope.Analyze(info)), pointsto.Options{})
	_, err = Translate(f, pts, nil, Options{Cores: 4})
	if err == nil || !strings.Contains(err.Error(), "cannot translate pthread_create") {
		t.Errorf("err = %v, want untranslatable-launch report", err)
	}
}
