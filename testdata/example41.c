#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
