#include <stdio.h>
#include "RCCE.h"
int global;
int *ptr;
int *sum;

void *tf(void *tid)
{
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
}

int RCCE_APP(int *argc, char **argv)
{
    RCCE_init(&argc, &argv);
    ptr = (int *)(RCCE_shmalloc(sizeof(int)));
    sum = (int *)(RCCE_shmalloc(sizeof(int) * 3));
    int myID;
    myID = RCCE_ue();
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    int rc;
    tf((void *)(myID));
    RCCE_barrier(&RCCE_COMM_WORLD);
    printf("Sum Array: %d\n", sum[myID]);
    RCCE_finalize();
    return 0;
}
