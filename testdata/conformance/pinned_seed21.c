#include <stdio.h>
#include <pthread.h>
double A0[2];
double A1[2];
int rr1;

void *step0(void *tid)
{
    int me = (int)tid;
    int lo = me;
    int i;
    for (i = lo; i < lo + 1; i++)
    {
        A1[i] = ((((double)(me) + 2.5) + A1[i]) - (((double)(me) + (double)(i)) + (A0[i] - A0[i])));
        A0[i] = (double)(me);
    }
    pthread_exit(NULL);
}

void *step1(void *tid)
{
    int me = (int)tid;
    int lo = me;
    int i;
    for (i = lo; i < lo + 1; i++)
    {
        A1[i] = (double)(i);
        A1[i] = ((((double)(rr1) * (double)(rr1)) + A0[(i % 2)]) - (double)(i));
    }
    pthread_exit(NULL);
}

int main()
{
    pthread_t th[2];
    int t;
    int r;
    for (t = 0; t < 2; t++)
        pthread_create(&th[t], NULL, step0, (void *)t);
    for (t = 0; t < 2; t++)
        pthread_join(th[t], NULL);
    for (r = 0; r < 2; r++)
    {
        rr1 = r;
        for (t = 0; t < 2; t++)
            pthread_create(&th[t], NULL, step1, (void *)t);
        for (t = 0; t < 2; t++)
            pthread_join(th[t], NULL);
    }
    printf("c0 %.6f\n", A0[0] + A0[1]);
    printf("c1 %.6f\n", A1[0] + A1[1]);
    return 0;
}
