#include <stdio.h>
#include <pthread.h>
double A0[8];
double A1[8];

void *step0(void *tid)
{
    int me = (int)tid;
    int lo = me * 2;
    int i;
    for (i = lo; i < lo + 2; i++)
    {
        A1[i] = A1[i] + (A0[(i % 8)] + ((A0[(2 % 8)] - (double)(i)) + ((double)(me) - A0[i])));
        A1[i] = A1[i] + (double)(me);
    }
    printf("p0 %d %d\n", me, (int)(A0[me * 2]));
    pthread_exit(NULL);
}

int main()
{
    pthread_t th[4];
    int t;
    for (t = 0; t < 4; t++)
        pthread_create(&th[t], NULL, step0, (void *)t);
    for (t = 0; t < 4; t++)
        pthread_join(th[t], NULL);
    int k;
    double c0;
    c0 = 0.0;
    double c1;
    c1 = 0.0;
    for (k = 0; k < 8; k++)
    {
        c0 = c0 + A0[k];
        c1 = c1 + A1[k];
    }
    printf("c0 %.6f\n", c0);
    printf("c1 %.6f\n", c1);
    return 0;
}
