#include <stdio.h>
#include <pthread.h>
double A0[9];
int gsum;
pthread_mutex_t mu;

void *step0(void *tid)
{
    int me = (int)tid;
    int lo = me * 3;
    int i;
    for (i = lo; i < lo + 3; i++)
    {
        A0[i] = A0[i] + (((A0[i] + (double)(i)) * 1.0) - (double)(me));
        if ((i) % 2 == 0)
            A0[i] = (((A0[i] + A0[i]) + A0[i]) + (((double)(i) + 3.0) - (2.5 - (double)(i))));
        A0[i] = (double)(i);
    }
    pthread_mutex_lock(&mu);
    gsum = gsum + 1;
    pthread_mutex_unlock(&mu);
    printf("p0 %d %d\n", me, (int)(A0[me * 3]));
    pthread_exit(NULL);
}

int main()
{
    pthread_t th[3];
    int t;
    pthread_mutex_init(&mu, NULL);
    for (t = 0; t < 3; t++)
        pthread_create(&th[t], NULL, step0, (void *)t);
    for (t = 0; t < 3; t++)
        pthread_join(th[t], NULL);
    int k;
    double c0;
    c0 = 0.0;
    for (k = 0; k < 9; k++)
        c0 = c0 + A0[k];
    printf("c0 %.6f\n", c0);
    printf("g %d\n", gsum);
    return 0;
}
