// Command benchguard is the benchmark regression gate: it compares two
// `go test -bench` outputs — the tree-walk reference engine (HSMCC_ENGINE=
// treewalk) and the default coroutine (compiled) engine from the same
// binary on the same machine — and fails unless the coroutine engine
// keeps a minimum geomean speedup. Comparing the two engines of one
// build keeps the guard machine-independent: absolute ns/op vary with
// CI hardware, the ratio between engines does not. It also emits a
// benchstat-style delta report for the CI artifact.
//
// Usage:
//
//	benchguard -old treewalk.txt -new coroutine.txt -min-speedup 1.15 -out delta.txt
//
// With -max-overhead the gate inverts into an overhead budget: instead
// of requiring new to beat old, it requires new to cost at most
// (1 + overhead) of old by geomean. That is the tracing gate — the
// same benchmarks with the trace hooks compiled in but disabled must
// stay within e.g. 2% (-max-overhead 0.02) of the pre-change baseline.
//
//	benchguard -old base.txt -new traced-off.txt -max-overhead 0.02
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// parse collects ns/op samples per benchmark name.
func parse(path string) (map[string][]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]float64)
	for _, line := range strings.Split(string(b), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, nil
}

// median of a sample set; the robust center for noisy CI machines.
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func run() error {
	oldPath := flag.String("old", "", "benchmark output of the reference (tree-walk) engine")
	newPath := flag.String("new", "", "benchmark output of the coroutine (compiled) engine")
	minSpeedup := flag.Float64("min-speedup", 1.5, "minimum geomean old/new ratio to pass")
	maxOverhead := flag.Float64("max-overhead", 0, "overhead-budget mode: pass while geomean new/old <= 1+this (overrides -min-speedup)")
	oldLabel := flag.String("old-label", "tree-walk", "report column label for -old")
	newLabel := flag.String("new-label", "coroutine", "report column label for -new")
	outPath := flag.String("out", "", "optional delta report file")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("benchguard: -old and -new are required")
	}
	oldRes, err := parse(*oldPath)
	if err != nil {
		return err
	}
	newRes, err := parse(*newPath)
	if err != nil {
		return err
	}
	var names []string
	for name := range newRes {
		if _, ok := oldRes[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("benchguard: no common benchmarks between %s and %s", *oldPath, *newPath)
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %14s %14s %9s\n", "benchmark", *oldLabel, *newLabel, "speedup")
	logSum := 0.0
	for _, name := range names {
		o, n := median(oldRes[name]), median(newRes[name])
		ratio := o / n
		logSum += math.Log(ratio)
		fmt.Fprintf(&sb, "%-34s %12.2fms %12.2fms %8.2fx\n", name, o/1e6, n/1e6, ratio)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Fprintf(&sb, "%-34s %14s %14s %8.2fx\n", "geomean", "", "", geomean)
	fmt.Print(sb.String())
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	if *maxOverhead > 0 {
		// Overhead budget: the geomean is old/new, so new within
		// (1+overhead)×old means geomean >= 1/(1+overhead).
		overhead := 1/geomean - 1
		if floor := 1 / (1 + *maxOverhead); geomean < floor {
			return fmt.Errorf("benchguard: geomean overhead %.1f%% above the %.1f%% budget — %s regressed against %s",
				100*overhead, 100**maxOverhead, *newLabel, *oldLabel)
		}
		fmt.Printf("benchguard: ok (geomean overhead %.1f%% within the %.1f%% budget)\n",
			100*overhead, 100**maxOverhead)
		return nil
	}
	if geomean < *minSpeedup {
		return fmt.Errorf("benchguard: geomean speedup %.2fx below the %.2fx floor — the coroutine engine regressed",
			geomean, *minSpeedup)
	}
	fmt.Printf("benchguard: ok (geomean %.2fx >= %.2fx)\n", geomean, *minSpeedup)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
