// Command hsmcc is the paper's source-to-source translator: it reads a
// Pthread C program, runs the five-stage analysis and translation
// pipeline, and emits the RCCE program for the SCC.
//
// Usage:
//
//	hsmcc [-cores N] [-policy size|freq|offchip] [-mpb BYTES]
//	      [-tables] [-log] [-o out.c] input.c
//
// With -tables the per-variable analysis (thesis Tables 4.1/4.2) and the
// Stage 4 partitioning decision are printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"hsmcc"
)

func main() {
	cores := flag.Int("cores", 32, "number of SCC cores the program targets")
	policyName := flag.String("policy", "size", "Stage 4 policy: size (Algorithm 3), freq, offchip")
	mpb := flag.Int("mpb", 0, "on-chip shared memory budget in bytes (0 = full 384 KB MPB)")
	tables := flag.Bool("tables", false, "print the Tables 4.1/4.2 analysis to stderr")
	log := flag.Bool("log", false, "print the Stage 5 pass log to stderr")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hsmcc [flags] input.c")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var policy hsmcc.PartitionPolicy
	switch *policyName {
	case "size":
		policy = hsmcc.SizeAscending
	case "freq":
		policy = hsmcc.FrequencyDensity
	case "offchip":
		policy = hsmcc.OffChipOnly
	default:
		fmt.Fprintf(os.Stderr, "hsmcc: unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	res, err := hsmcc.TranslateFile(flag.Arg(0), hsmcc.Options{
		Cores:       *cores,
		MPBCapacity: *mpb,
		Policy:      policy,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsmcc:", err)
		os.Exit(1)
	}

	if *tables {
		fmt.Fprintln(os.Stderr, "Table 4.1 — per-variable information (post Stage 3)")
		fmt.Fprint(os.Stderr, res.Table41())
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr, "Table 4.2 — sharing status per stage")
		fmt.Fprint(os.Stderr, res.Table42())
		if res.Part != nil {
			fmt.Fprintln(os.Stderr)
			fmt.Fprintln(os.Stderr, "Stage 4 — data partitioning")
			fmt.Fprint(os.Stderr, res.Part.Dump())
		}
	}
	if *log {
		for _, line := range res.PassLog() {
			fmt.Fprintln(os.Stderr, "pass:", line)
		}
	}
	if *out == "" {
		fmt.Print(res.Output)
		return
	}
	if err := os.WriteFile(*out, []byte(res.Output), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "hsmcc:", err)
		os.Exit(1)
	}
}
