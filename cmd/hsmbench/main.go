// Command hsmbench regenerates the paper's evaluation: every table and
// figure of thesis Chapter 6 (and the analysis tables of Chapter 4), on
// the simulated SCC — plus the parallel experiment grid that sweeps the
// full (workload x cores x policy x MPB-budget) space concurrently and
// emits machine-readable BENCH_<grid>.json reports.
//
// Figure/table mode:
//
//	hsmbench [-exp all|table4.1|table4.2|table6.1|fig6.1|fig6.2|fig6.3]
//	         [-threads N] [-scale F]
//
// Grid mode (entered by -exp grid, or implied by -json / -workloads /
// -parallel / -shard):
//
//	hsmbench -workloads pi,stream -cores 4,16 -policies offchip,size
//	         [-mpb 0,24576] [-scale F] [-parallel N] [-shard i/n]
//	         [-json] [-out PATH] [-grid NAME] [-trace-dir DIR]
//
// -scale shrinks problem sizes for quick runs (1.0 reproduces the full
// experiment; 0.1 finishes in seconds). -parallel runs grid cells
// concurrently across goroutines; results are deterministic regardless
// of worker count. -shard i/n runs every n-th cell starting at i so n
// machines cover the grid exactly once. See docs/BENCHMARKS.md for the
// grid schema, the JSON format, and the figure-to-grid mapping.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hsmcc/internal/bench"
	"hsmcc/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table4.1, table4.2, table6.1, fig6.1, fig6.2, fig6.3, grid")
	threads := flag.Int("threads", 32, "thread/core count (figure/table mode)")
	scale := flag.Float64("scale", 1.0, "problem size multiplier")
	gridName := flag.String("grid", "paper", "grid name; the JSON artifact is BENCH_<name>.json")
	workloads := flag.String("workloads", "", "grid mode: comma-separated workload keys (empty = full corpus)")
	coresList := flag.String("cores", "", "grid mode: comma-separated core counts (empty = 1,2,4,8,16,32)")
	policies := flag.String("policies", "offchip,size", "grid mode: comma-separated Stage 4 policies (offchip, size, freq, profiled)")
	budgets := flag.String("mpb", "", "grid mode: comma-separated MPB byte budgets (0 = full MPB)")
	parallel := flag.Int("parallel", 0, "grid mode: worker goroutines (0 = GOMAXPROCS)")
	shard := flag.String("shard", "", "grid mode: run shard i/n of the grid, e.g. 0/4")
	jsonOut := flag.Bool("json", false, "grid mode: write BENCH_<grid>.json")
	engine := flag.String("engine", "", "execution engine: compiled (coroutine core) or treewalk; empty = HSMCC_ENGINE/default")
	outPath := flag.String("out", "", "grid mode: JSON output path override (- = stdout)")
	doSynth := flag.Bool("synth", false, "grid mode: sweep the synthetic sharing x footprint plane instead of the corpus")
	synthSharing := flag.String("synth-sharing", "", "-synth: comma-separated degrees of sharing (empty = 1,2,4,8)")
	synthFootprint := flag.String("synth-footprint", "", "-synth: comma-separated shared addresses per group (empty = 64,256,1024)")
	machine := flag.String("machine", "", "machine preset: scc48, mesh256 or mesh1024 (empty = scc48)")
	traceDir := flag.String("trace-dir", "", "grid mode: write one Chrome trace_event JSON file per executed RCCE simulation into this directory")
	flag.Parse()

	// Any explicitly set grid flag selects grid mode; combining one with
	// a figure/table experiment is a conflict, not something to ignore.
	gridFlagNames := []string{"grid", "workloads", "cores", "policies", "mpb", "parallel", "shard", "json", "out", "synth", "synth-sharing", "synth-footprint", "machine", "trace-dir"}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	gridFlags := false
	for _, name := range gridFlagNames {
		if explicit[name] {
			gridFlags = true
		}
	}
	if gridFlags && *exp != "all" && *exp != "grid" {
		fmt.Fprintf(os.Stderr, "hsmbench: grid flags (-%s) cannot be combined with -exp %s\n", strings.Join(gridFlagNames, "/-"), *exp)
		os.Exit(2)
	}
	if *exp == "grid" || gridFlags {
		if *doSynth {
			// The synthetic plane has its own defaults: the win map wants
			// every placement policy (profiled vs the statics), a budget
			// that actually constrains the MPB, and a tractable core axis.
			if !explicit["grid"] {
				*gridName = "synth"
			}
			if !explicit["policies"] {
				*policies = "offchip,size,freq,profiled"
			}
			if *coresList == "" {
				// Up to 8 cores so the sharing=8 rows are distinct (the
				// emitted group degree clamps to the UE count).
				*coresList = "2,4,8"
			}
			if *budgets == "" {
				*budgets = "0,512"
			}
		}
		synthOpts, err := synthPlaneOptions(*doSynth, *synthSharing, *synthFootprint)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hsmbench grid: %v\n", err)
			os.Exit(1)
		}
		if err := runGrid(*gridName, *workloads, *coresList, *policies, *budgets, *scale, *parallel, *shard, *engine, *machine, *traceDir, *jsonOut, *outPath, synthOpts); err != nil {
			fmt.Fprintf(os.Stderr, "hsmbench grid: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Threads = *threads
	cfg.Scale = *scale

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "hsmbench %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table4.1", func() error {
		p, err := analysisPipeline()
		if err != nil {
			return err
		}
		fmt.Println("Table 4.1 — information extracted per variable (Example Code 4.1, post Stage 3)")
		fmt.Print(p.Table41())
		return nil
	})
	run("table4.2", func() error {
		p, err := analysisPipeline()
		if err != nil {
			return err
		}
		fmt.Println("Table 4.2 — variable sharing status after each stage (Example Code 4.1)")
		fmt.Print(p.Table42())
		return nil
	})
	run("table6.1", func() error {
		fmt.Println("Table 6.1 — SCC configuration")
		fmt.Print(bench.Table61(cfg))
		return nil
	})
	run("fig6.1", func() error {
		rows, err := bench.Fig61(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig61(rows))
		return nil
	})
	run("fig6.2", func() error {
		rows, err := bench.Fig62(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig62(rows))
		return nil
	})
	run("fig6.3", func() error {
		rows, err := bench.Fig63(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig63(rows))
		return nil
	})
}

// synthPlaneOptions resolves the -synth-sharing/-synth-footprint axes,
// returning nil when -synth is off.
func synthPlaneOptions(on bool, sharing, footprint string) (*bench.SynthPlaneOptions, error) {
	if !on {
		return nil, nil
	}
	opt := bench.DefaultSynthPlane()
	if sharing != "" {
		var err error
		if opt.Sharings, err = splitInts(sharing); err != nil {
			return nil, fmt.Errorf("-synth-sharing: %w", err)
		}
	}
	if footprint != "" {
		var err error
		if opt.Footprints, err = splitInts(footprint); err != nil {
			return nil, fmt.Errorf("-synth-footprint: %w", err)
		}
	}
	return &opt, nil
}

// runGrid executes the parallel experiment sweep and emits the report.
func runGrid(name, workloads, cores, policies, budgets string, scale float64, parallel int, shard, engine, machine, traceDir string, jsonOut bool, outPath string, synthOpts *bench.SynthPlaneOptions) error {
	g := bench.DefaultGrid()
	g.Name = name
	g.Scale = scale
	g.Machine = machine
	if synthOpts != nil {
		g.Workloads = nil
		for _, p := range bench.SynthPlane(*synthOpts) {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("synth plane cell %s: %w", p.Key(), err)
			}
			g.Workloads = append(g.Workloads, p.Key())
		}
	}
	if workloads != "" {
		g.Workloads = splitCSV(workloads)
	}
	if cores != "" {
		var err error
		if g.Cores, err = splitInts(cores); err != nil {
			return fmt.Errorf("-cores: %w", err)
		}
	}
	if policies != "" {
		g.Policies = splitCSV(policies)
	}
	if budgets != "" {
		var err error
		if g.MPBBudgets, err = splitInts(budgets); err != nil {
			return fmt.Errorf("-mpb: %w", err)
		}
	}
	opt := bench.RunOptions{Parallel: parallel, Engine: engine, TraceDir: traceDir}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return fmt.Errorf("-trace-dir: %w", err)
		}
	}
	if shard != "" {
		var err error
		if opt.ShardIndex, opt.ShardCount, err = parseShard(shard); err != nil {
			return err
		}
	}
	rep, err := bench.RunGrid(g, opt)
	if err != nil {
		return err
	}
	if synthOpts != nil {
		rep.SynthWins = bench.SynthWinMap(rep)
	}
	// With -out -, stdout must carry only the JSON document; the human
	// table moves to stderr.
	human := os.Stdout
	if outPath == "-" {
		human = os.Stderr
	}
	fmt.Fprint(human, bench.FormatReport(rep))
	if synthOpts != nil {
		fmt.Fprintln(human)
		fmt.Fprint(human, bench.FormatSynthWinMap(rep.SynthWins))
	}
	if jsonOut || outPath != "" {
		buf, err := rep.JSON()
		if err != nil {
			return err
		}
		path := outPath
		if path == "" {
			path = rep.Filename()
		}
		if path == "-" {
			os.Stdout.Write(buf)
		} else {
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d cells)\n", path, len(rep.Results))
		}
	}
	for _, r := range rep.Results {
		if r.Error != "" {
			return fmt.Errorf("cell %d (%s/%d/%s) failed: %s", r.Index, r.Workload, r.Cores, r.Policy, r.Error)
		}
		if !r.Match {
			return fmt.Errorf("cell %d (%s/%d/%s): RCCE output diverged from the Pthread baseline", r.Index, r.Workload, r.Cores, r.Policy)
		}
	}
	return nil
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitCSV(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseShard(s string) (idx, count int, err error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("-shard wants i/n, got %q", s)
	}
	if idx, err = strconv.Atoi(s[:i]); err != nil {
		return 0, 0, fmt.Errorf("-shard wants i/n, got %q", s)
	}
	if count, err = strconv.Atoi(s[i+1:]); err != nil {
		return 0, 0, fmt.Errorf("-shard wants i/n, got %q", s)
	}
	if count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("-shard %q out of range (want 0 <= i < n)", s)
	}
	return idx, count, nil
}

// analysisPipeline analyses the thesis's running example.
func analysisPipeline() (*core.Pipeline, error) {
	src, err := os.ReadFile("testdata/example41.c")
	if err != nil {
		// Fall back to the embedded copy so the binary works from any
		// directory.
		return core.Analyze("example41.c", example41, core.Config{})
	}
	return core.Analyze("example41.c", string(src), core.Config{})
}

const example41 = `
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
`
