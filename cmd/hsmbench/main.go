// Command hsmbench regenerates the paper's evaluation: every table and
// figure of thesis Chapter 6 (and the analysis tables of Chapter 4), on
// the simulated SCC.
//
// Usage:
//
//	hsmbench [-exp all|table4.1|table4.2|table6.1|fig6.1|fig6.2|fig6.3]
//	         [-threads N] [-scale F]
//
// -scale shrinks problem sizes for quick runs (1.0 reproduces the full
// experiment; 0.1 finishes in seconds).
package main

import (
	"flag"
	"fmt"
	"os"

	"hsmcc/internal/bench"
	"hsmcc/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table4.1, table4.2, table6.1, fig6.1, fig6.2, fig6.3")
	threads := flag.Int("threads", 32, "thread/core count")
	scale := flag.Float64("scale", 1.0, "problem size multiplier")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Threads = *threads
	cfg.Scale = *scale

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "hsmbench %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table4.1", func() error {
		p, err := analysisPipeline()
		if err != nil {
			return err
		}
		fmt.Println("Table 4.1 — information extracted per variable (Example Code 4.1, post Stage 3)")
		fmt.Print(p.Table41())
		return nil
	})
	run("table4.2", func() error {
		p, err := analysisPipeline()
		if err != nil {
			return err
		}
		fmt.Println("Table 4.2 — variable sharing status after each stage (Example Code 4.1)")
		fmt.Print(p.Table42())
		return nil
	})
	run("table6.1", func() error {
		fmt.Println("Table 6.1 — SCC configuration")
		fmt.Print(bench.Table61(cfg))
		return nil
	})
	run("fig6.1", func() error {
		rows, err := bench.Fig61(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig61(rows))
		return nil
	})
	run("fig6.2", func() error {
		rows, err := bench.Fig62(cfg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig62(rows))
		return nil
	})
	run("fig6.3", func() error {
		rows, err := bench.Fig63(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig63(rows))
		return nil
	})
}

// analysisPipeline analyses the thesis's running example.
func analysisPipeline() (*core.Pipeline, error) {
	src, err := os.ReadFile("testdata/example41.c")
	if err != nil {
		// Fall back to the embedded copy so the binary works from any
		// directory.
		return core.Analyze("example41.c", example41, core.Config{})
	}
	return core.Analyze("example41.c", string(src), core.Config{})
}

const example41 = `
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
`
