// Command hsmconf is the differential conformance driver: it generates
// seeded random Pthread kernels and checks that the single-core Pthread
// baseline and the full translate→RCCE→sccsim pipeline agree on every
// (cores × placement policy × MPB budget) cell of the matrix. The
// policy axis includes the profile-guided `profiled` placement, so the
// profiling pass and its optimizer are fuzzed against every generated
// kernel shape alongside the static heuristics.
//
// Quick check (200 kernels, default matrix):
//
//	hsmconf -n 200
//
// Overnight soak, persisting minimized failures as regression seeds:
//
//	hsmconf -soak 8h -out testdata/conformance
//
// Reproduce a failure from a log line (seeds are explicit everywhere —
// every failure prints the exact flags that replay it):
//
//	hsmconf -seed 1337 -n 1 -cores 4 -policies freq -budgets 512
//
// Inspect the kernel a seed generates:
//
//	hsmconf -seed 1337 -print -cores 4
//
// Synthetic mode (-synth) swaps the kernel grammar for internal/synth's
// continuous parameter vectors: each seed derives a (mix, sharing,
// footprint, rounds) vector, emits a race-free kernel, and is checked
// across the same matrix. Failures shrink in parameter space and
// persist alongside grammar failures:
//
//	hsmconf -synth -n 100
//	hsmconf -synth -seed 42 -n 1 -cores 2 -policies size
//	hsmconf -synth -seed 42 -print
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"hsmcc/internal/conformance"
	"hsmcc/internal/synth"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base generator seed; kernel i of a run uses seed+i")
		n        = flag.Int("n", 200, "number of kernels to check (ignored with -soak)")
		soak     = flag.Duration("soak", 0, "keep generating batches until this much time has passed (e.g. 8h)")
		cores    = flag.String("cores", "2,4", "comma-separated UE counts to sweep")
		policies = flag.String("policies", "offchip,size,freq,profiled", "comma-separated Stage 4 policies (offchip, size, freq, profiled)")
		budgets  = flag.String("budgets", "0,512", "comma-separated MPB byte budgets (0 = full MPB)")
		oversub  = flag.String("oversub", "1,2", "comma-separated many-to-one factors (1 = one UE per core; f > 1 runs f*cores UEs, thesis 7.2)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent kernel checks")
		out      = flag.String("out", "testdata/conformance", "directory that receives minimized failing kernels")
		doPrint  = flag.Bool("print", false, "print the kernel -seed generates (at the first -cores value) and exit")
		doSynth  = flag.Bool("synth", false, "check synthetic parameter-vector kernels (internal/synth) instead of grammar kernels")
	)
	flag.Parse()

	if *n < 1 {
		fatal(fmt.Errorf("-n must be at least 1, got %d", *n))
	}
	matrix, err := conformance.ParseMatrix(*cores, *policies, *budgets, *oversub)
	if err != nil {
		fatal(err)
	}
	eng := conformance.NewEngine()
	eng.Matrix = matrix

	if *doPrint {
		if *doSynth {
			p := synth.ParamsForSeed(*seed)
			fmt.Printf("// %s\n", p.Key())
			fmt.Print(p.Source(matrix.Cores[0]))
			return
		}
		spec := conformance.SpecForSeed(*seed, eng.Gen)
		fmt.Print(spec.Source(matrix.Cores[0]))
		return
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	start := time.Now()
	base := *seed
	totalKernels := 0
	mode := "conformance"
	if *doSynth {
		mode = "synth conformance"
	}
	var failures []*conformance.Failure
	var synthFailures []*conformance.SynthFailure
	for batch := 0; ; batch++ {
		if *doSynth {
			rep := eng.RunSynth(base, *n, *parallel, logf)
			totalKernels += rep.Kernels
			synthFailures = append(synthFailures, rep.Failures...)
		} else {
			rep := eng.Run(base, *n, *parallel, logf)
			totalKernels += rep.Kernels
			failures = append(failures, rep.Failures...)
		}
		base += int64(*n)
		if *soak <= 0 || time.Since(start) >= *soak {
			break
		}
		fmt.Fprintf(os.Stderr, "soak: batch %d done, %d kernels so far, %v elapsed\n",
			batch+1, totalKernels, time.Since(start).Round(time.Second))
	}

	nfail := len(failures) + len(synthFailures)
	fmt.Printf("%s: %d kernels x %d RCCE cells each (seeds %d..%d, policies %s, budgets %s, oversub %s): %d failure(s)\n",
		mode, totalKernels, matrix.Cells(), *seed, base-1, *policies, *budgets, *oversub, nfail)
	if nfail == 0 {
		return
	}
	if err := persistFailures(*out, failures); err != nil {
		fatal(err)
	}
	if err := persistSynthFailures(*out, synthFailures); err != nil {
		fatal(err)
	}
	for _, f := range failures {
		fmt.Printf("FAIL %s\n", f.Div)
	}
	for _, f := range synthFailures {
		fmt.Printf("FAIL %s\n", f.Div)
	}
	fmt.Printf("minimized reproducers written to %s\n", *out)
	os.Exit(1)
}

// persistFailures writes each failure's minimized kernel and repro
// metadata into dir — the format docs/TESTING.md documents for
// promoting a crasher to a regression seed.
func persistFailures(dir string, failures []*conformance.Failure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range failures {
		stem := filepath.Join(dir, fmt.Sprintf("seed%d", f.Seed))
		if err := os.WriteFile(stem+".c", []byte(f.MinSource), 0o644); err != nil {
			return err
		}
		// Top-level fields follow conformance.SeedMeta, so once the bug
		// is fixed the pair promotes to a regression seed unchanged.
		meta, err := json.MarshalIndent(struct {
			conformance.SeedMeta
			Failure *conformance.Failure `json:"failure"`
		}{
			SeedMeta: conformance.SeedMeta{
				Seed:   f.Seed,
				Cores:  f.Div.Cores,
				Policy: f.Div.Policy,
				Budget: f.Div.Budget,
				Note:   "minimized by hsmconf; .c is the minimized reproducer",
			},
			Failure: f,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(stem+".json", append(meta, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// persistSynthFailures writes synthetic failures in the same
// SeedMeta-embedding shape (the .c holds the minimized kernel, so the
// pair replays through the ordinary seed-corpus loader), plus the full
// parameter vectors for parameter-space triage.
func persistSynthFailures(dir string, failures []*conformance.SynthFailure) error {
	if len(failures) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range failures {
		stem := filepath.Join(dir, fmt.Sprintf("synth_seed%d", f.Seed))
		if err := os.WriteFile(stem+".c", []byte(f.MinSource), 0o644); err != nil {
			return err
		}
		meta, err := json.MarshalIndent(struct {
			conformance.SeedMeta
			Failure *conformance.SynthFailure `json:"synth_failure"`
		}{
			SeedMeta: conformance.SeedMeta{
				Seed:    f.Seed,
				Cores:   f.Div.Cores,
				Policy:  f.Div.Policy,
				Budget:  f.Div.Budget,
				Oversub: f.Div.Oversub,
				Note:    fmt.Sprintf("synthetic vector %s minimized to %s by hsmconf -synth", f.Params.Key(), f.Minimized.Key()),
			},
			Failure: f,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(stem+".json", append(meta, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hsmconf:", err)
	os.Exit(1)
}
