// Command hsmsim runs a C program on the simulated SCC, under either the
// single-core Pthread baseline or the multiprocess RCCE runtime.
//
// Usage:
//
//	hsmsim [-mode pthread|rcce] [-cores N] [-machine scc48|mesh256|mesh1024]
//	       [-stats] [-trace out.json] program.c
//
// pthread mode executes main with every created thread time-sharing core
// 0 (the paper's baseline). rcce mode runs RCCE_APP (or main) on N cores,
// one process each.
//
// -trace writes the run's scheduling and memory-system timeline as a
// Chrome trace_event JSON file — open it in ui.perfetto.dev or
// chrome://tracing. Tracing does not change simulation results (the
// recorder only observes; see docs/OBSERVABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"hsmcc/internal/interp"
	"hsmcc/internal/pthreadrt"
	"hsmcc/internal/rcce"
	"hsmcc/internal/sccsim"
	"hsmcc/internal/trace"
)

func main() {
	mode := flag.String("mode", "pthread", "execution mode: pthread (1-core baseline) or rcce")
	cores := flag.Int("cores", 32, "number of UEs in rcce mode")
	stats := flag.Bool("stats", false, "print machine statistics to stderr")
	machinePreset := flag.String("machine", "", "machine preset: scc48, mesh256 or mesh1024 (empty = scc48)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hsmsim [flags] program.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	pr, err := interp.Compile(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	mcfg, err := sccsim.PresetConfig(*machinePreset)
	if err != nil {
		fatal(err)
	}
	machine, err := sccsim.New(mcfg)
	if err != nil {
		fatal(err)
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(machine, 0)
	}

	var output string
	var seconds float64
	switch *mode {
	case "pthread":
		opts := pthreadrt.DefaultOptions()
		if rec != nil {
			opts.Trace = rec
		}
		res, err := pthreadrt.Run(pr, machine, opts)
		if err != nil {
			fatal(err)
		}
		output, seconds = res.Output, res.Seconds()
		if *stats {
			fmt.Fprintf(os.Stderr, "context switches: %d\n", res.Switches)
		}
	case "rcce":
		opts := rcce.DefaultOptions(*cores)
		if rec != nil {
			opts.Trace = rec
		}
		res, err := rcce.Run(pr, machine, opts)
		if err != nil {
			fatal(err)
		}
		output, seconds = res.Output, res.Seconds()
		if *stats {
			fmt.Fprintf(os.Stderr, "on-chip bytes: %d, shared bytes: %d\n", res.OnChipBytes, res.SharedBytes)
		}
	default:
		fmt.Fprintf(os.Stderr, "hsmsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if rec != nil {
		if err := rec.WriteFile(*traceOut); err != nil {
			fatal(err)
		}
		s := rec.Summarize()
		fmt.Fprintf(os.Stderr, "trace: %s (%d events, %d contexts, %d dropped)\n",
			*traceOut, s.Events, s.Contexts, s.Dropped)
	}

	fmt.Print(output)
	fmt.Fprintf(os.Stderr, "simulated time: %.6f s\n", seconds)
	if *stats {
		t := machine.TotalStats()
		fmt.Fprintf(os.Stderr,
			"loads=%d stores=%d private=%d shared=%d mpb=%d (remote %d)\n"+
				"L1 %d/%d hits, L2 %d/%d hits\n",
			t.Loads, t.Stores, t.PrivateAccesses, t.SharedAccesses, t.MPBAccesses, t.MPBRemote,
			t.L1Hits, t.L1Hits+t.L1Misses, t.L2Hits, t.L2Hits+t.L2Misses)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hsmsim:", err)
	os.Exit(1)
}
