// Command hsmprof drives the access-profiling subsystem standalone: it
// runs the profile pass for one or more workloads (translate with every
// shared variable off-chip, execute once with counters attached), prints
// the per-variable access profile — reads, writes, per-core frequency,
// sharer set — with the simulator's MPB occupancy statistics, and
// optimizes the placement for each requested MPB budget.
//
// Inspect a workload's measured sharing behaviour:
//
//	hsmprof -workloads stream -cores 8 -scale 0.1
//
// Ask what the optimizer would place at concrete budgets (0 = the full
// MPB), exactly as the grid's `profiled` policy will:
//
//	hsmprof -workloads lu,stream -cores 32 -mpb 0,4096,16384
//
// Emit the machine-readable form (profiles plus placements) for
// downstream tooling:
//
//	hsmprof -workloads pi -json -out PROF_pi.json
//
// Workload keys may also be synthetic parameter vectors in their
// canonical `synth:` encoding (print one with `hsmconf -synth -print`),
// so a grid cell's sharing behaviour is inspectable directly:
//
//	hsmprof -workloads 'synth:s1:o768:m0.75:l0.6:h0.6:d4:a256:p32:r2:ki' -cores 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hsmcc/internal/bench"
	"hsmcc/internal/interp"
	"hsmcc/internal/profile"
)

// output is the JSON document: one entry per workload.
type output struct {
	Workloads []workloadOutput `json:"workloads"`
}

type workloadOutput struct {
	Report     *profile.Report      `json:"report"`
	Placements []*profile.Placement `json:"placements,omitempty"`
}

func main() {
	var (
		workloads = flag.String("workloads", "", "comma-separated workload keys (empty = full corpus)")
		cores     = flag.Int("cores", 32, "thread/core count to profile at")
		scale     = flag.Float64("scale", 1.0, "problem size multiplier")
		budgets   = flag.String("mpb", "0", "comma-separated MPB byte budgets to optimize for (0 = full MPB)")
		engine    = flag.String("engine", "", "execution engine: compiled or treewalk; empty = HSMCC_ENGINE/default")
		jsonOut   = flag.Bool("json", false, "emit the JSON document instead of tables")
		outPath   = flag.String("out", "", "JSON output path (- or empty = stdout; implies -json)")
	)
	flag.Parse()

	keys := splitCSV(*workloads)
	if len(keys) == 0 {
		for _, w := range bench.All() {
			keys = append(keys, w.Key)
		}
	}
	budgetList, err := splitInts(*budgets)
	if err != nil {
		fatal(fmt.Errorf("-mpb: %w", err))
	}

	cfg := bench.DefaultConfig()
	cfg.Threads = *cores
	cfg.Scale = *scale
	cfg.Cache = bench.NewCache()
	if cfg.Engine, err = interp.ParseEngine(*engine); err != nil {
		fatal(err)
	}
	fullMPB := cfg.Machine().Config().MPBTotal()

	var doc output
	for _, key := range keys {
		w, ok := bench.ByKey(key)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", key))
		}
		rep, err := bench.ProfileWorkload(w, cfg)
		if err != nil {
			fatal(err)
		}
		wo := workloadOutput{Report: rep}
		for _, b := range budgetList {
			eff := b
			if eff <= 0 {
				eff = fullMPB
			}
			wo.Placements = append(wo.Placements, profile.Optimize(rep, eff))
		}
		doc.Workloads = append(doc.Workloads, wo)
		if !*jsonOut && *outPath == "" {
			fmt.Print(rep.Table())
			for _, pl := range wo.Placements {
				fmt.Printf("  %s\n", pl)
			}
			fmt.Println()
		}
	}

	if *jsonOut || *outPath != "" {
		buf, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *outPath == "" || *outPath == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Printf("wrote %s (%d workloads)\n", *outPath, len(doc.Workloads))
		}
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitCSV(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hsmprof: %v\n", err)
	os.Exit(1)
}
