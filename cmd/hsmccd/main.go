// Command hsmccd is the simulation-as-a-service daemon: a long-running
// HTTP server that keeps one process-lifetime compile/translation/
// baseline/profile cache warm across requests, so repeated and
// concurrent experiments share work instead of redoing it per CLI
// invocation.
//
// Serving mode:
//
//	hsmccd [-addr :8357] [-cache-bytes N] [-max-cores N] [-max-scale F]
//	       [-default-deadline D] [-max-deadline D]
//	       [-max-inflight N] [-max-queue N]
//	       [-drain-grace D] [-drain-timeout D]
//	       [-debug-addr addr] [-slow-ms N] [-log-json]
//
// Every request is logged through log/slog with its X-Request-Id;
// requests slower than -slow-ms are logged at WARN with their span
// tree. -debug-addr serves net/http/pprof on a separate listener
// (keep it on localhost). See docs/OBSERVABILITY.md.
//
// Endpoints: POST /v1/compile, /v1/translate, /v1/simulate (one JSON
// document each), POST /v1/grid and /v1/batch (NDJSON streams in
// deterministic order), GET /metrics and /healthz. Request bodies
// accept corpus workload keys and canonical synth: keys. See
// docs/SERVING.md for the API reference and the Operations section
// (overload control, drain semantics, Retry-After contract).
//
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503
// "draining" and new /v1/* work is refused (the -drain-grace window
// gives load balancers time to deregister), then the listener stops
// and in-flight requests run until -drain-timeout, at which point
// their simulations are canceled through the deadline path and the
// process exits cleanly.
//
// Selftest mode:
//
//	hsmccd -selftest [-selftest-requests N] [-selftest-seed S]
//	       [-selftest-concurrency N] [-selftest-full] [-chaos]
//
// runs the concurrent load-test harness (internal/serve/loadtest)
// against an in-process instance: a seeded mixed scenario whose every
// deterministic response is compared byte-for-byte against direct
// bench runs, plus a cache-hot hit-rate check and (on multi-core
// hosts) the GOMAXPROCS throughput-scaling study. Exit status 0 means
// zero divergence, no goroutine leak, hit rate and scaling bounds met.
// With -chaos the harness instead runs the seeded fault-injection
// scenario: compute panics, delays and spurious cancellations injected
// at the compile/translate/simulate seams, a retrying client honoring
// Retry-After, and the structural gates — successful responses still
// byte-identical to the oracle, in-flight weight never above the slot
// bound, no goroutine leaks, drain completes. -selftest-full
// additionally writes the full JSON report to stdout (the CI nightly
// artifact).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hsmcc/internal/serve"
	"hsmcc/internal/serve/chaos"
	"hsmcc/internal/serve/loadtest"
)

func main() {
	addr := flag.String("addr", ":8357", "listen address")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "cache budget in estimated resident bytes (<=0 = unbounded)")
	maxCores := flag.Int("max-cores", 0, "per-request core-count limit (0 = default 48)")
	maxScale := flag.Float64("max-scale", 0, "per-request problem-scale limit (0 = default 1.0)")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline when a request names none (0 = default 30s)")
	maxDeadline := flag.Duration("max-deadline", 0, "hard per-request deadline cap (0 = default 2m)")
	maxInflight := flag.Int("max-inflight", 0, "weighted in-flight work bound (0 = default 64)")
	maxQueue := flag.Int("max-queue", 0, "admission wait-queue depth (0 = default 256, negative = no queue)")
	drainGrace := flag.Duration("drain-grace", time.Second, "on SIGTERM, keep answering (503) this long before closing the listener")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM, let in-flight requests run this long before canceling them")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled; keep it off the public interface)")
	slowMs := flag.Int64("slow-ms", 1000, "log requests slower than this (with their span tree) at WARN; <=0 disables the slow path")
	logJSON := flag.Bool("log-json", false, "emit request logs as JSON (default logfmt-style text)")
	selftest := flag.Bool("selftest", false, "run the concurrent load-test harness in-process and exit")
	stRequests := flag.Int("selftest-requests", 1000, "selftest: request count of the mixed scenario")
	stSeed := flag.Int64("selftest-seed", 1, "selftest: scenario seed")
	stConcurrency := flag.Int("selftest-concurrency", 32, "selftest: concurrent clients")
	stFull := flag.Bool("selftest-full", false, "selftest: write the full JSON report to stdout")
	stChaos := flag.Bool("chaos", false, "selftest: run the seeded fault-injection scenario instead of the standard suite")
	flag.Parse()

	if *selftest {
		os.Exit(runSelftest(*stSeed, *stRequests, *stConcurrency, *stFull, *stChaos))
	}

	var slowThreshold time.Duration
	if *slowMs > 0 {
		slowThreshold = time.Duration(*slowMs) * time.Millisecond
	}
	var logHandler slog.Handler
	if *logJSON {
		logHandler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		logHandler = slog.NewTextHandler(os.Stderr, nil)
	}
	srv := serve.New(serve.Options{
		CacheBytes: *cacheBytes,
		Limits: serve.Limits{
			MaxCores:        *maxCores,
			MaxScale:        *maxScale,
			DefaultDeadline: *defaultDeadline,
			MaxDeadline:     *maxDeadline,
			MaxInFlight:     *maxInflight,
			MaxQueue:        *maxQueue,
		},
		Logger:        slog.New(logHandler),
		SlowThreshold: slowThreshold,
	})
	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hsmccd: %v", err)
	}
	lim := srv.Limits()
	log.Printf("hsmccd: listening on %s (cache budget %d MB, max cores %d, max scale %g, deadline %s default / %s max, in-flight %d, queue %d)",
		ln.Addr(), *cacheBytes>>20, lim.MaxCores, lim.MaxScale, lim.DefaultDeadline, lim.MaxDeadline, lim.MaxInFlight, lim.MaxQueue)
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		// Serve only returns on listener failure here (Shutdown has not
		// been called); ErrServerClosed would still be a clean exit.
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("hsmccd: %v", err)
		}
	case sig := <-sigCh:
		log.Printf("hsmccd: %v received, draining (grace %s, deadline %s)", sig, *drainGrace, *drainTimeout)
		shutdown(srv, httpSrv, *drainGrace, *drainTimeout)
		log.Printf("hsmccd: drained, exiting")
	}
}

// serveDebug runs the pprof endpoints on their own listener. The
// handlers are registered on a private mux (never the serving mux), so
// profiling stays reachable only via -debug-addr — typically a
// localhost port — and a drain of the public listener does not take
// the profiler down with it.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("hsmccd: pprof debug server on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("hsmccd: debug server: %v", err)
	}
}

// shutdown runs the drain sequence: flip /healthz to draining and
// refuse new /v1/* work while the listener stays up (so load balancers
// see the 503s and deregister), then stop the listener and let
// in-flight requests run out the drain deadline, canceling their
// simulations if they outlive it.
func shutdown(srv *serve.Server, httpSrv *http.Server, grace, deadline time.Duration) {
	srv.StartDrain()
	time.Sleep(grace)

	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	// At the drain deadline, cut in-flight simulations through the
	// cancel path so their handlers answer 504 and Shutdown can finish.
	defer context.AfterFunc(ctx, srv.CancelInFlight)()
	if err := httpSrv.Shutdown(ctx); err != nil {
		// Deadline hit with requests still in flight: they have just
		// been canceled; give the handlers a short beat to flush, then
		// close whatever is left.
		srv.CancelInFlight()
		gctx, gcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer gcancel()
		if err := httpSrv.Shutdown(gctx); err != nil {
			httpSrv.Close()
		}
	}
}

// selftestReport is the -selftest-full JSON artifact.
type selftestReport struct {
	Mixed    *loadtest.Report        `json:"mixed,omitempty"`
	CacheHot *loadtest.Report        `json:"cache_hot,omitempty"`
	Scaling  []loadtest.ScalingPoint `json:"scaling,omitempty"`
	Chaos    *loadtest.Report        `json:"chaos,omitempty"`
	Pass     bool                    `json:"pass"`
	Failures []string                `json:"failures,omitempty"`
}

// runSelftest executes the scenarios and prints one summary line each;
// any violated bound is a failure. With chaosMode it runs the
// fault-injection scenario alone (CI runs the standard suite and the
// chaos suite as separate jobs).
func runSelftest(seed int64, requests, concurrency int, full, chaosMode bool) int {
	art := &selftestReport{}
	fail := func(format string, args ...any) {
		art.Failures = append(art.Failures, fmt.Sprintf(format, args...))
	}

	if chaosMode {
		runChaosSelftest(art, fail, seed, requests, concurrency)
	} else {
		runStandardSelftest(art, fail, seed, requests, concurrency)
	}

	art.Pass = len(art.Failures) == 0
	if full {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(art)
	}
	if !art.Pass {
		for _, f := range art.Failures {
			log.Printf("selftest: FAIL: %s", f)
		}
		return 1
	}
	log.Printf("selftest: PASS")
	return 0
}

func runStandardSelftest(art *selftestReport, fail func(string, ...any), seed int64, requests, concurrency int) {
	log.Printf("selftest: mixed scenario (seed %d, %d requests, %d clients)...", seed, requests, concurrency)
	mixed, err := loadtest.Run(loadtest.Options{Seed: seed, Requests: requests, Concurrency: concurrency})
	if err != nil {
		fail("mixed scenario: %v", err)
	} else {
		art.Mixed = mixed
		log.Printf("selftest: %s", mixed)
		if err := mixed.Err(); err != nil {
			fail("%v", err)
		}
	}

	log.Printf("selftest: cache-hot scenario...")
	hot, err := loadtest.Run(loadtest.Options{Seed: seed + 1, Requests: requests / 4, Concurrency: concurrency, HotOnly: true})
	if err != nil {
		fail("cache-hot scenario: %v", err)
	} else {
		art.CacheHot = hot
		log.Printf("selftest: %s", hot)
		if err := hot.Err(); err != nil {
			fail("%v", err)
		}
		if hot.CacheHitRate <= 0.5 {
			fail("cache-hot hit rate %.2f, want > 0.5", hot.CacheHitRate)
		}
	}

	if procs := loadtest.ScalingProcs(); len(procs) >= 2 {
		log.Printf("selftest: scaling study at GOMAXPROCS %v...", procs)
		points, err := loadtest.RunScaling(loadtest.Options{Seed: seed + 2, Requests: requests / 4, Concurrency: concurrency}, procs)
		if err != nil {
			fail("scaling study: %v", err)
		} else {
			art.Scaling = points
			for _, p := range points {
				log.Printf("selftest: GOMAXPROCS %d: %.1f req/s", p.Procs, p.Throughput)
			}
			if err := loadtest.CheckScaling(points); err != nil {
				fail("%v", err)
			}
		}
	} else {
		log.Printf("selftest: single-CPU host, skipping the GOMAXPROCS scaling study")
	}
}

// runChaosSelftest is the fault-injection gate: a seeded mixed scenario
// against a server with an active injector and a small slot bound. The
// pass criteria are structural — every successful response still
// byte-identical to the direct-bench oracle, enough faults actually
// injected to mean something, in-flight weight never above the slot
// bound, no goroutine leaks, and the drain sequence completes.
func runChaosSelftest(art *selftestReport, fail func(string, ...any), seed int64, requests, concurrency int) {
	plan := chaos.DefaultPlan(seed)
	log.Printf("selftest: chaos scenario (seed %d, %d requests, %d clients; rates panic %.2f delay %.2f cancel %.2f)...",
		seed, requests, concurrency, plan.PanicRate, plan.DelayRate, plan.CancelRate)
	rep, err := loadtest.Run(loadtest.Options{Seed: seed, Requests: requests, Concurrency: concurrency, Chaos: &plan})
	if err != nil {
		fail("chaos scenario: %v", err)
		return
	}
	art.Chaos = rep
	log.Printf("selftest: %s", rep)
	if err := rep.Err(); err != nil {
		fail("%v", err)
	}
	if rep.StatusCounts[200] == 0 {
		fail("chaos: no request succeeded")
	}
	if rep.Chaos == nil {
		fail("chaos: no chaos report produced")
		return
	}
	// The gate is only meaningful if faults actually flowed: require at
	// least one injected fault per 20 requests (the seeded default plan
	// lands well above this).
	if min := int64(requests / 20); rep.Chaos.Faults.Injected() < min {
		fail("chaos: only %d faults injected, want >= %d — the plan is not exercising the seams",
			rep.Chaos.Faults.Injected(), min)
	}
}
