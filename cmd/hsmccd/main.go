// Command hsmccd is the simulation-as-a-service daemon: a long-running
// HTTP server that keeps one process-lifetime compile/translation/
// baseline/profile cache warm across requests, so repeated and
// concurrent experiments share work instead of redoing it per CLI
// invocation.
//
// Serving mode:
//
//	hsmccd [-addr :8357] [-cache-bytes N] [-max-cores N] [-max-scale F]
//	       [-default-deadline D] [-max-deadline D]
//
// Endpoints: POST /v1/compile, /v1/translate, /v1/simulate (one JSON
// document each), POST /v1/grid and /v1/batch (NDJSON streams in
// deterministic order), GET /metrics and /healthz. Request bodies
// accept corpus workload keys and canonical synth: keys. See
// docs/SERVING.md for the API reference and examples.
//
// Selftest mode:
//
//	hsmccd -selftest [-selftest-requests N] [-selftest-seed S]
//	       [-selftest-concurrency N] [-selftest-full]
//
// runs the concurrent load-test harness (internal/serve/loadtest)
// against an in-process instance: a seeded mixed scenario whose every
// deterministic response is compared byte-for-byte against direct
// bench runs, plus a cache-hot hit-rate check and (on multi-core
// hosts) the GOMAXPROCS throughput-scaling study. Exit status 0 means
// zero divergence, no goroutine leak, hit rate and scaling bounds met.
// -selftest-full additionally writes the full JSON report to stdout
// (the CI nightly artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"hsmcc/internal/serve"
	"hsmcc/internal/serve/loadtest"
)

func main() {
	addr := flag.String("addr", ":8357", "listen address")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "cache budget in estimated resident bytes (<=0 = unbounded)")
	maxCores := flag.Int("max-cores", 0, "per-request core-count limit (0 = default 48)")
	maxScale := flag.Float64("max-scale", 0, "per-request problem-scale limit (0 = default 1.0)")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline when a request names none (0 = default 30s)")
	maxDeadline := flag.Duration("max-deadline", 0, "hard per-request deadline cap (0 = default 2m)")
	selftest := flag.Bool("selftest", false, "run the concurrent load-test harness in-process and exit")
	stRequests := flag.Int("selftest-requests", 1000, "selftest: request count of the mixed scenario")
	stSeed := flag.Int64("selftest-seed", 1, "selftest: scenario seed")
	stConcurrency := flag.Int("selftest-concurrency", 32, "selftest: concurrent clients")
	stFull := flag.Bool("selftest-full", false, "selftest: write the full JSON report to stdout")
	flag.Parse()

	if *selftest {
		os.Exit(runSelftest(*stSeed, *stRequests, *stConcurrency, *stFull))
	}

	srv := serve.New(serve.Options{
		CacheBytes: *cacheBytes,
		Limits: serve.Limits{
			MaxCores:        *maxCores,
			MaxScale:        *maxScale,
			DefaultDeadline: *defaultDeadline,
			MaxDeadline:     *maxDeadline,
		},
	})
	lim := srv.Limits()
	log.Printf("hsmccd: listening on %s (cache budget %d MB, max cores %d, max scale %g, deadline %s default / %s max)",
		*addr, *cacheBytes>>20, lim.MaxCores, lim.MaxScale, lim.DefaultDeadline, lim.MaxDeadline)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}

// selftestReport is the -selftest-full JSON artifact.
type selftestReport struct {
	Mixed    *loadtest.Report        `json:"mixed"`
	CacheHot *loadtest.Report        `json:"cache_hot"`
	Scaling  []loadtest.ScalingPoint `json:"scaling,omitempty"`
	Pass     bool                    `json:"pass"`
	Failures []string                `json:"failures,omitempty"`
}

// runSelftest executes the three scenarios and prints one summary line
// each; any violated bound is a failure.
func runSelftest(seed int64, requests, concurrency int, full bool) int {
	art := &selftestReport{}
	fail := func(format string, args ...any) {
		art.Failures = append(art.Failures, fmt.Sprintf(format, args...))
	}

	log.Printf("selftest: mixed scenario (seed %d, %d requests, %d clients)...", seed, requests, concurrency)
	mixed, err := loadtest.Run(loadtest.Options{Seed: seed, Requests: requests, Concurrency: concurrency})
	if err != nil {
		fail("mixed scenario: %v", err)
	} else {
		art.Mixed = mixed
		log.Printf("selftest: %s", mixed)
		if err := mixed.Err(); err != nil {
			fail("%v", err)
		}
	}

	log.Printf("selftest: cache-hot scenario...")
	hot, err := loadtest.Run(loadtest.Options{Seed: seed + 1, Requests: requests / 4, Concurrency: concurrency, HotOnly: true})
	if err != nil {
		fail("cache-hot scenario: %v", err)
	} else {
		art.CacheHot = hot
		log.Printf("selftest: %s", hot)
		if err := hot.Err(); err != nil {
			fail("%v", err)
		}
		if hot.CacheHitRate <= 0.5 {
			fail("cache-hot hit rate %.2f, want > 0.5", hot.CacheHitRate)
		}
	}

	if procs := loadtest.ScalingProcs(); len(procs) >= 2 {
		log.Printf("selftest: scaling study at GOMAXPROCS %v...", procs)
		points, err := loadtest.RunScaling(loadtest.Options{Seed: seed + 2, Requests: requests / 4, Concurrency: concurrency}, procs)
		if err != nil {
			fail("scaling study: %v", err)
		} else {
			art.Scaling = points
			for _, p := range points {
				log.Printf("selftest: GOMAXPROCS %d: %.1f req/s", p.Procs, p.Throughput)
			}
			if err := loadtest.CheckScaling(points); err != nil {
				fail("%v", err)
			}
		}
	} else {
		log.Printf("selftest: single-CPU host, skipping the GOMAXPROCS scaling study")
	}

	art.Pass = len(art.Failures) == 0
	if full {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(art)
	}
	if !art.Pass {
		for _, f := range art.Failures {
			log.Printf("selftest: FAIL: %s", f)
		}
		return 1
	}
	log.Printf("selftest: PASS")
	return 0
}
