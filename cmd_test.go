package hsmcc

// Smoke tests for the three command-line tools: build each binary once
// and run it against the repository's test data.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildCmd compiles one of the cmd/ binaries into a temp dir.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCmdHsmcc(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCmd(t, "hsmcc")
	out, err := exec.Command(bin, "-cores", "3", "-policy", "offchip", "testdata/example41.c").Output()
	if err != nil {
		t.Fatalf("hsmcc: %v", err)
	}
	golden, err := os.ReadFile("testdata/example41_rcce.golden.c")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(golden) {
		t.Errorf("CLI output differs from golden translation:\n%s", out)
	}
	// Error paths.
	if err := exec.Command(bin, "-policy", "bogus", "testdata/example41.c").Run(); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("missing input accepted")
	}
}

func TestCmdHsmsim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCmd(t, "hsmsim")
	// Baseline mode on the Pthread example.
	out, err := exec.Command(bin, "-mode", "pthread", "testdata/example41.c").Output()
	if err != nil {
		t.Fatalf("hsmsim pthread: %v", err)
	}
	for _, want := range []string{"Sum Array: 1", "Sum Array: 2", "Sum Array: 3"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("pthread run missing %q:\n%s", want, out)
		}
	}
	// RCCE mode on the golden translated program.
	out, err = exec.Command(bin, "-mode", "rcce", "-cores", "3", "testdata/example41_rcce.golden.c").Output()
	if err != nil {
		t.Fatalf("hsmsim rcce: %v", err)
	}
	if !strings.Contains(string(out), "Sum Array:") {
		t.Errorf("rcce run produced no sums:\n%s", out)
	}
}

func TestCmdHsmconf(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCmd(t, "hsmconf")
	// -print must emit a parseable kernel deterministically.
	a, err := exec.Command(bin, "-seed", "7", "-print", "-cores", "3").Output()
	if err != nil {
		t.Fatalf("hsmconf -print: %v", err)
	}
	b, err := exec.Command(bin, "-seed", "7", "-print", "-cores", "3").Output()
	if err != nil {
		t.Fatalf("hsmconf -print (second): %v", err)
	}
	if string(a) != string(b) {
		t.Error("hsmconf -print is not deterministic for a fixed seed")
	}
	if !strings.Contains(string(a), "pthread_create") {
		t.Errorf("generated kernel has no thread launch:\n%s", a)
	}
	// A small conformance run over all three policies must pass.
	out, err := exec.Command(bin, "-seed", "1", "-n", "6", "-cores", "2",
		"-policies", "offchip,size,freq", "-budgets", "0",
		"-out", filepath.Join(t.TempDir(), "crashers")).Output()
	if err != nil {
		t.Fatalf("hsmconf run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 failure(s)") {
		t.Errorf("conformance run reported failures:\n%s", out)
	}
	// Error paths: a bad matrix must be rejected before any work.
	if err := exec.Command(bin, "-policies", "bogus").Run(); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := exec.Command(bin, "-cores", "0").Run(); err == nil {
		t.Error("cores=0 accepted")
	}
}

// TestCmdHsmccdDrain covers the daemon's SIGTERM lifecycle end to end:
// while a long simulation is in flight, the signal must flip /healthz
// to 503 draining, refuse new /v1/* work, cancel the in-flight
// simulation at the drain deadline (a clean 504, not a dropped
// connection), and exit 0 with the drain log lines.
func TestCmdHsmccdDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs a multi-second drain sequence")
	}
	bin := buildCmd(t, "hsmccd")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain-grace", "1s", "-drain-timeout", "2s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its real listener address (the test binds :0), so
	// parse the first log line for the port; keep draining stderr into a
	// buffer for the final assertions.
	var logs bytes.Buffer
	sc := bufio.NewScanner(io.TeeReader(stderr, &logs))
	var base string
	listenRe := regexp.MustCompile(`listening on (127\.0\.0\.1:\d+)`)
	for sc.Scan() {
		if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never logged its listener address:\n%s", logs.String())
	}
	done := make(chan struct{})
	go func() { // the tee already captured scanned bytes; drain the rest
		io.Copy(&logs, stderr)
		close(done)
	}()

	if status, body := get(t, base+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz before drain: %d %q", status, body)
	}

	// Park a simulation that takes far longer (~15s) than the 2s drain
	// deadline, so the only way the process can exit on time is by
	// canceling it.
	slowCh := make(chan *http.Response, 1)
	slowErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/simulate", "application/json",
			strings.NewReader(`{"workload":"lu","cores":8,"scale":1.0,"deadline_ms":60000}`))
		if err != nil {
			slowErr <- err
			return
		}
		slowCh <- resp
	}()
	time.Sleep(300 * time.Millisecond) // let the request reach the handler

	start := time.Now()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// During the grace window the listener still answers: /healthz must
	// report draining and new work must be refused.
	var sawDraining bool
	for deadline := time.Now().Add(800 * time.Millisecond); time.Now().Before(deadline); {
		status, body := get(t, base+"/healthz")
		if status == http.StatusServiceUnavailable && strings.Contains(body, "draining") {
			sawDraining = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("healthz never reported 503 draining during the grace window")
	}
	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"workload":"pi"}`))
	if err != nil {
		t.Fatalf("compile during drain: %v", err)
	}
	refuseBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("compile during drain: status %d %s, want 503", resp.StatusCode, refuseBody)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("drain refusal carries no Retry-After header")
	}

	// The parked simulation must come back as a clean 504 once the drain
	// deadline cancels it.
	select {
	case resp := <-slowCh:
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("in-flight simulate under drain: status %d %s, want 504", resp.StatusCode, body)
		}
	case err := <-slowErr:
		t.Errorf("in-flight simulate dropped instead of answered: %v", err)
	case <-time.After(15 * time.Second):
		t.Error("in-flight simulate never completed — drain cancel did not reach it")
	}

	if err := cmd.Wait(); err != nil {
		t.Errorf("daemon exit after SIGTERM: %v (want clean exit 0)", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("drain took %s, want grace+deadline+slack (< 10s)", elapsed)
	}
	<-done
	for _, want := range []string{"draining (grace", "drained, exiting"} {
		if !strings.Contains(logs.String(), want) {
			t.Errorf("daemon log missing %q:\n%s", want, logs.String())
		}
	}
}

// get issues a GET and returns (status, body), failing the test on
// transport errors only if the caller treats them as fatal — during
// drain the listener may already be gone, so errors map to status 0.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, fmt.Sprint(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestCmdHsmbench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCmd(t, "hsmbench")
	out, err := exec.Command(bin, "-exp", "table6.1").Output()
	if err != nil {
		t.Fatalf("hsmbench table6.1: %v", err)
	}
	if !strings.Contains(string(out), "800 MHz") {
		t.Errorf("table6.1 output wrong:\n%s", out)
	}
	out, err = exec.Command(bin, "-exp", "table4.2").Output()
	if err != nil {
		t.Fatalf("hsmbench table4.2: %v", err)
	}
	if !strings.Contains(string(out), "tmp") {
		t.Errorf("table4.2 output wrong:\n%s", out)
	}
	// A fast figure run.
	out, err = exec.Command(bin, "-exp", "fig6.1", "-threads", "4", "-scale", "0.05").Output()
	if err != nil {
		t.Fatalf("hsmbench fig6.1: %v", err)
	}
	if !strings.Contains(string(out), "Pi Approximation") {
		t.Errorf("fig6.1 output wrong:\n%s", out)
	}
	// Grid mode: a parallel sharded sweep that must emit valid JSON.
	jsonPath := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	out, err = exec.Command(bin, "-workloads", "pi,hist", "-cores", "2,4", "-scale", "0.05",
		"-parallel", "4", "-grid", "smoke", "-json", "-out", jsonPath).Output()
	if err != nil {
		t.Fatalf("hsmbench grid: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Grid \"smoke\"") {
		t.Errorf("grid summary missing:\n%s", out)
	}
	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("grid JSON not written: %v", err)
	}
	var rep struct {
		Results []struct {
			Workload string `json:"workload"`
			Match    bool   `json:"match"`
			RCCEPs   uint64 `json:"rcce_ps"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("grid JSON invalid: %v", err)
	}
	if len(rep.Results) != 8 {
		t.Errorf("grid JSON has %d results, want 8", len(rep.Results))
	}
	for i, r := range rep.Results {
		if !r.Match || r.RCCEPs == 0 {
			t.Errorf("grid JSON cell %d (%s): match=%v rcce_ps=%d", i, r.Workload, r.Match, r.RCCEPs)
		}
	}
}
