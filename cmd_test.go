package hsmcc

// Smoke tests for the three command-line tools: build each binary once
// and run it against the repository's test data.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one of the cmd/ binaries into a temp dir.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCmdHsmcc(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCmd(t, "hsmcc")
	out, err := exec.Command(bin, "-cores", "3", "-policy", "offchip", "testdata/example41.c").Output()
	if err != nil {
		t.Fatalf("hsmcc: %v", err)
	}
	golden, err := os.ReadFile("testdata/example41_rcce.golden.c")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(golden) {
		t.Errorf("CLI output differs from golden translation:\n%s", out)
	}
	// Error paths.
	if err := exec.Command(bin, "-policy", "bogus", "testdata/example41.c").Run(); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("missing input accepted")
	}
}

func TestCmdHsmsim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCmd(t, "hsmsim")
	// Baseline mode on the Pthread example.
	out, err := exec.Command(bin, "-mode", "pthread", "testdata/example41.c").Output()
	if err != nil {
		t.Fatalf("hsmsim pthread: %v", err)
	}
	for _, want := range []string{"Sum Array: 1", "Sum Array: 2", "Sum Array: 3"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("pthread run missing %q:\n%s", want, out)
		}
	}
	// RCCE mode on the golden translated program.
	out, err = exec.Command(bin, "-mode", "rcce", "-cores", "3", "testdata/example41_rcce.golden.c").Output()
	if err != nil {
		t.Fatalf("hsmsim rcce: %v", err)
	}
	if !strings.Contains(string(out), "Sum Array:") {
		t.Errorf("rcce run produced no sums:\n%s", out)
	}
}

func TestCmdHsmconf(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCmd(t, "hsmconf")
	// -print must emit a parseable kernel deterministically.
	a, err := exec.Command(bin, "-seed", "7", "-print", "-cores", "3").Output()
	if err != nil {
		t.Fatalf("hsmconf -print: %v", err)
	}
	b, err := exec.Command(bin, "-seed", "7", "-print", "-cores", "3").Output()
	if err != nil {
		t.Fatalf("hsmconf -print (second): %v", err)
	}
	if string(a) != string(b) {
		t.Error("hsmconf -print is not deterministic for a fixed seed")
	}
	if !strings.Contains(string(a), "pthread_create") {
		t.Errorf("generated kernel has no thread launch:\n%s", a)
	}
	// A small conformance run over all three policies must pass.
	out, err := exec.Command(bin, "-seed", "1", "-n", "6", "-cores", "2",
		"-policies", "offchip,size,freq", "-budgets", "0",
		"-out", filepath.Join(t.TempDir(), "crashers")).Output()
	if err != nil {
		t.Fatalf("hsmconf run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 failure(s)") {
		t.Errorf("conformance run reported failures:\n%s", out)
	}
	// Error paths: a bad matrix must be rejected before any work.
	if err := exec.Command(bin, "-policies", "bogus").Run(); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := exec.Command(bin, "-cores", "0").Run(); err == nil {
		t.Error("cores=0 accepted")
	}
}

func TestCmdHsmbench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCmd(t, "hsmbench")
	out, err := exec.Command(bin, "-exp", "table6.1").Output()
	if err != nil {
		t.Fatalf("hsmbench table6.1: %v", err)
	}
	if !strings.Contains(string(out), "800 MHz") {
		t.Errorf("table6.1 output wrong:\n%s", out)
	}
	out, err = exec.Command(bin, "-exp", "table4.2").Output()
	if err != nil {
		t.Fatalf("hsmbench table4.2: %v", err)
	}
	if !strings.Contains(string(out), "tmp") {
		t.Errorf("table4.2 output wrong:\n%s", out)
	}
	// A fast figure run.
	out, err = exec.Command(bin, "-exp", "fig6.1", "-threads", "4", "-scale", "0.05").Output()
	if err != nil {
		t.Fatalf("hsmbench fig6.1: %v", err)
	}
	if !strings.Contains(string(out), "Pi Approximation") {
		t.Errorf("fig6.1 output wrong:\n%s", out)
	}
	// Grid mode: a parallel sharded sweep that must emit valid JSON.
	jsonPath := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	out, err = exec.Command(bin, "-workloads", "pi,hist", "-cores", "2,4", "-scale", "0.05",
		"-parallel", "4", "-grid", "smoke", "-json", "-out", jsonPath).Output()
	if err != nil {
		t.Fatalf("hsmbench grid: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Grid \"smoke\"") {
		t.Errorf("grid summary missing:\n%s", out)
	}
	buf, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("grid JSON not written: %v", err)
	}
	var rep struct {
		Results []struct {
			Workload string `json:"workload"`
			Match    bool   `json:"match"`
			RCCEPs   uint64 `json:"rcce_ps"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("grid JSON invalid: %v", err)
	}
	if len(rep.Results) != 8 {
		t.Errorf("grid JSON has %d results, want 8", len(rep.Results))
	}
	for i, r := range rep.Results {
		if !r.Match || r.RCCEPs == 0 {
			t.Errorf("grid JSON cell %d (%s): match=%v rcce_ps=%d", i, r.Workload, r.Match, r.RCCEPs)
		}
	}
}
