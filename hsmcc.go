// Package hsmcc reproduces "Enabling Multi-threaded Applications on
// Hybrid Shared Memory Manycore Architectures" (DATE 2015 / Rawat's ASU
// thesis): a five-stage compile-time framework that analyses a Pthread
// program, identifies a conservative superset of its shared data, maps
// that data onto the hybrid (on-chip SRAM + off-chip DRAM) shared memory
// of a non-coherent manycore, and translates the program into an RCCE
// multiprocess application — plus the full experimental substrate (an
// Intel SCC machine model, a Pthread baseline runtime, an RCCE runtime
// and a C interpreter) needed to rerun the paper's evaluation.
//
// Typical use:
//
//	res, err := hsmcc.TranslateFile("app.c", hsmcc.Options{Cores: 32})
//	fmt.Print(res.Output)            // the RCCE C program
//	fmt.Print(res.Table41())         // the per-variable analysis
//
// To execute programs on the simulated SCC, see RunPthread and RunRCCE;
// to regenerate the paper's tables and figures, see internal/bench via
// cmd/hsmbench.
package hsmcc

import (
	"fmt"
	"os"

	"hsmcc/internal/core"
	"hsmcc/internal/interp"
	"hsmcc/internal/partition"
	"hsmcc/internal/pthreadrt"
	"hsmcc/internal/rcce"
	"hsmcc/internal/sccsim"
)

// PartitionPolicy selects the Stage 4 heuristic.
type PartitionPolicy = partition.Policy

// Partitioning policies.
const (
	// SizeAscending is the paper's Algorithm 3.
	SizeAscending = partition.PolicySizeAscending
	// FrequencyDensity places hottest-per-byte data first (ablation).
	FrequencyDensity = partition.PolicyFrequencyDensity
	// OffChipOnly disables the MPB (the Fig 6.1 configuration).
	OffChipOnly = partition.PolicyOffChipOnly
	// Profiled places by an explicit measured placement map (see
	// Options.Placement and internal/profile).
	Profiled = partition.PolicyProfiled
)

// Options configures the translation pipeline.
type Options struct {
	// Cores is the number of SCC cores the translated program targets
	// (default 32, the paper's configuration).
	Cores int
	// MPBCapacity is the on-chip shared memory budget in bytes for
	// Stage 4 (default: the SCC's full 384 KB MPB).
	MPBCapacity int
	// Policy is the Stage 4 partitioning heuristic.
	Policy PartitionPolicy
	// Placement is the explicit per-variable placement map (name ->
	// on-chip) for the Profiled policy — typically the output of the
	// access-profiling optimizer (bench.ProfileWorkload + profile.Optimize).
	Placement map[string]bool
}

// Result is a completed translation: the pipeline artifacts plus the
// emitted RCCE C source.
type Result struct {
	*core.Pipeline
}

// Translate runs the five-stage pipeline over Pthread C source and
// returns the translated RCCE program (in Result.Output) along with all
// analysis artifacts.
func Translate(name, source string, opts Options) (*Result, error) {
	p, err := core.Run(name, source, core.Config{
		Cores:       opts.Cores,
		MPBCapacity: opts.MPBCapacity,
		Policy:      opts.Policy,
		Placement:   opts.Placement,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Pipeline: p}, nil
}

// TranslateFile is Translate over a file on disk.
func TranslateFile(path string, opts Options) (*Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Translate(path, string(src), opts)
}

// Analyze runs Stages 1-3 only (no transformation): the per-variable
// facts of Tables 4.1/4.2.
func Analyze(name, source string, opts Options) (*Result, error) {
	p, err := core.Analyze(name, source, core.Config{
		Cores:       opts.Cores,
		MPBCapacity: opts.MPBCapacity,
		Policy:      opts.Policy,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Pipeline: p}, nil
}

// RunReport summarises one simulated execution.
type RunReport struct {
	// Seconds is the simulated makespan.
	Seconds float64
	// Output is everything the program printed.
	Output string
	// Stats aggregates the machine's memory-system counters.
	Stats sccsim.CoreStats
}

// RunPthread executes Pthread C source under the paper's baseline: every
// thread time-shares one core of a simulated SCC.
func RunPthread(name, source string) (*RunReport, error) {
	pr, err := interp.Compile(name, source)
	if err != nil {
		return nil, err
	}
	m, err := sccsim.New(sccsim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res, err := pthreadrt.Run(pr, m, pthreadrt.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &RunReport{Seconds: res.Seconds(), Output: res.Output, Stats: res.Stats}, nil
}

// RunRCCE executes RCCE C source (typically a Translate result) with one
// process per core on a simulated SCC.
func RunRCCE(name, source string, cores int) (*RunReport, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("hsmcc: core count must be positive")
	}
	pr, err := interp.Compile(name, source)
	if err != nil {
		return nil, err
	}
	m, err := sccsim.New(sccsim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	res, err := rcce.Run(pr, m, rcce.DefaultOptions(cores))
	if err != nil {
		return nil, err
	}
	return &RunReport{Seconds: res.Seconds(), Output: res.Output, Stats: res.Stats}, nil
}
