module hsmcc

go 1.24
