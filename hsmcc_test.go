package hsmcc

import (
	"strings"
	"testing"
)

const facadeProgram = `
int results[4];
void *tf(void *tid) {
    int me = (int)tid;
    results[me] = me * 10;
    pthread_exit(NULL);
}
int main() {
    pthread_t th[4];
    int t;
    for (t = 0; t < 4; t++) pthread_create(&th[t], NULL, tf, (void*)t);
    for (t = 0; t < 4; t++) pthread_join(th[t], NULL);
    int sum = 0;
    for (t = 0; t < 4; t++) sum += results[t];
    printf("sum %d\n", sum);
    return 0;
}`

func TestTranslateAndRunRoundTrip(t *testing.T) {
	res, err := Translate("facade.c", facadeProgram, Options{Cores: 4})
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if !strings.Contains(res.Output, "RCCE_APP") {
		t.Fatalf("no RCCE_APP in output:\n%s", res.Output)
	}
	base, err := RunPthread("facade.c", facadeProgram)
	if err != nil {
		t.Fatalf("RunPthread: %v", err)
	}
	conv, err := RunRCCE("facade_rcce.c", res.Output, 4)
	if err != nil {
		t.Fatalf("RunRCCE: %v", err)
	}
	if !strings.Contains(base.Output, "sum 60") {
		t.Errorf("baseline output = %q, want sum 60", base.Output)
	}
	if !strings.Contains(conv.Output, "sum 60") {
		t.Errorf("rcce output = %q, want sum 60", conv.Output)
	}
	if base.Seconds <= 0 || conv.Seconds <= 0 {
		t.Error("both runs must take simulated time")
	}
}

func TestAnalyzeExposesTables(t *testing.T) {
	res, err := Analyze("facade.c", facadeProgram, Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !strings.Contains(res.Table41(), "results") {
		t.Error("Table41 should list the shared array")
	}
	if !strings.Contains(res.Table42(), "Stage 3") {
		t.Error("Table42 should show the stage trajectory")
	}
	if res.Output != "" {
		t.Error("Analyze must not translate")
	}
}

func TestTranslatePolicies(t *testing.T) {
	off, err := Translate("f.c", facadeProgram, Options{Cores: 4, Policy: OffChipOnly})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(off.Output, "RCCE_shmalloc") || strings.Contains(off.Output, "RCCE_mpbmalloc") {
		t.Error("OffChipOnly must allocate with RCCE_shmalloc only")
	}
	on, err := Translate("f.c", facadeProgram, Options{Cores: 4, Policy: SizeAscending})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(on.Output, "RCCE_mpbmalloc") {
		t.Error("SizeAscending with ample MPB must allocate on-chip")
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := Translate("bad.c", "int main( {", Options{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := RunRCCE("x.c", "int main() { return 0; }", 0); err == nil {
		t.Error("zero cores not rejected")
	}
	if _, err := TranslateFile("/nonexistent/file.c", Options{}); err == nil {
		t.Error("missing file not reported")
	}
}
