// Quickstart: translate the thesis's running example (Example Code 4.1)
// to RCCE, print the analysis tables, and execute both versions on the
// simulated SCC to confirm they compute the same thing.
package main

import (
	"fmt"
	"log"

	"hsmcc"
)

const pthreadProgram = `
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for (local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for (local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
`

func main() {
	res, err := hsmcc.Translate("example41.c", pthreadProgram, hsmcc.Options{Cores: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Stage 1-3 analysis (thesis Table 4.1) ===")
	fmt.Print(res.Table41())
	fmt.Println()
	fmt.Println("=== Sharing status per stage (thesis Table 4.2) ===")
	fmt.Print(res.Table42())
	fmt.Println()
	fmt.Println("=== Translated RCCE program (thesis Example Code 4.2) ===")
	fmt.Print(res.Output)

	base, err := hsmcc.RunPthread("example41.c", pthreadProgram)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := hsmcc.RunRCCE("example41_rcce.c", res.Output, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("=== Pthread baseline (1 core, %.6f s simulated) ===\n%s", base.Seconds, base.Output)
	fmt.Printf("=== RCCE (3 cores, %.6f s simulated) ===\n%s", conv.Seconds, conv.Output)
}
