// Streammpb demonstrates the paper's second contribution (Stage 4): the
// same memory-bound Stream benchmark is translated twice — once with all
// shared data in off-chip DRAM, once with Algorithm 3 placing it in the
// on-chip Message Passing Buffer — and both are executed on the
// simulated SCC. The MPB version wins by the Fig 6.2 mechanism: on-chip
// SRAM latency instead of uncacheable DRAM round trips.
package main

import (
	"fmt"
	"log"

	"hsmcc"
	"hsmcc/internal/bench"
	"hsmcc/internal/partition"
)

func main() {
	const cores = 16
	stream, _ := bench.ByKey("stream")
	src := stream.Source(cores, 0.5)

	offchip, err := hsmcc.Translate("stream.c", src, hsmcc.Options{Cores: cores, Policy: hsmcc.OffChipOnly})
	if err != nil {
		log.Fatal(err)
	}
	onchip, err := hsmcc.Translate("stream.c", stream.Source(cores, 0.5), hsmcc.Options{Cores: cores, Policy: hsmcc.SizeAscending})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Stage 4 decision (Algorithm 3, size-ascending):")
	fmt.Print(onchip.Part.Dump())
	fmt.Println()

	off, err := hsmcc.RunRCCE("stream_off.c", offchip.Output, cores)
	if err != nil {
		log.Fatal(err)
	}
	on, err := hsmcc.RunRCCE("stream_on.c", onchip.Output, cores)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("off-chip shared DRAM: %.6f s  (%d uncacheable shared accesses)\n",
		off.Seconds, off.Stats.SharedAccesses)
	fmt.Printf("on-chip MPB:          %.6f s  (%d MPB accesses, %d remote)\n",
		on.Seconds, on.Stats.MPBAccesses, on.Stats.MPBRemote)
	fmt.Printf("gain: %.1fx  (thesis Fig 6.2: Stream is the biggest MPB winner)\n",
		off.Seconds/on.Seconds)
	_ = partition.OnChip
}
