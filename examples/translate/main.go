// Translate shows the analysis half of the framework on a program with a
// thread-specific (standalone) launch and a mutex: the translator guards
// the task with a core-ID check (thesis §4.5's isolation) and converts
// the Pthread mutex to the SCC's test-and-set lock API.
package main

import (
	"fmt"
	"log"

	"hsmcc"
)

const program = `
#include <stdio.h>
#include <pthread.h>

pthread_mutex_t lock;
int counter;
int done;

void *worker(void *arg) {
    int i;
    for (i = 0; i < 100; i++) {
        pthread_mutex_lock(&lock);
        counter = counter + 1;
        pthread_mutex_unlock(&lock);
    }
    pthread_exit(NULL);
}

void *logger(void *arg) {
    done = 1;
    pthread_exit(NULL);
}

int main() {
    pthread_mutex_init(&lock, NULL);
    pthread_t workers[4];
    pthread_t aux;
    int t;
    for (t = 0; t < 4; t++) {
        pthread_create(&workers[t], NULL, worker, (void *)t);
    }
    pthread_create(&aux, NULL, logger, NULL);
    for (t = 0; t < 4; t++) {
        pthread_join(workers[t], NULL);
    }
    pthread_join(aux, NULL);
    printf("counter %d done %d\n", counter, done);
    return 0;
}
`

func main() {
	res, err := hsmcc.Translate("mutexapp.c", program, hsmcc.Options{Cores: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Pass log (Stage 5) ===")
	for _, line := range res.PassLog() {
		fmt.Println(" ", line)
	}
	fmt.Println()
	fmt.Println("=== Translated program ===")
	fmt.Print(res.Output)

	base, err := hsmcc.RunPthread("mutexapp.c", program)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := hsmcc.RunRCCE("mutexapp_rcce.c", res.Output, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("baseline: %s", base.Output)
	fmt.Printf("rcce (first line): %s\n", firstLine(conv.Output))
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
