// Scaling sweeps the Pi Approximation benchmark over core counts, the
// thesis Figure 6.3 study: translate once per configuration, run on the
// simulated SCC, and report the speedup over the single-core Pthread
// baseline.
package main

import (
	"fmt"
	"log"

	"hsmcc/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig()
	cfg.Scale = 0.25 // keep the sweep quick; shapes are size-independent

	rows, err := bench.Fig63(cfg, []int{1, 2, 4, 8, 16, 32, 48})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.FormatFig63(rows))
	fmt.Println()
	fmt.Println("Near-linear scaling: compute-bound, perfectly balanced work")
	fmt.Println("with one barrier — the thesis's best case for HSM conversion.")
}
