// Power sweeps the SCC's DVFS envelope with the Pi benchmark: the same
// translated RCCE program runs with the chip clocked at several
// frequencies, reporting simulated runtime, the fitted power model
// (anchored to the chip's published 25 W @ 0.7 V/125 MHz and 125 W @
// 1.14 V/1 GHz operating points) and the resulting energy — the
// power/performance trade the thesis motivates HSM manycores with.
package main

import (
	"fmt"
	"log"

	"hsmcc"
	"hsmcc/internal/bench"
	"hsmcc/internal/interp"
	"hsmcc/internal/rcce"
	"hsmcc/internal/sccsim"
)

func main() {
	const cores = 16
	pi, _ := bench.ByKey("pi")
	src := pi.Source(cores, 0.5)

	translated, err := hsmcc.Translate("pi.c", src, hsmcc.Options{Cores: cores})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %10s %10s %10s\n", "MHz", "time (ms)", "power (W)", "energy (J)")
	for _, mhz := range []int{200, 400, 533, 800, 1000} {
		pr, err := interp.Compile("pi_rcce.c", translated.Output)
		if err != nil {
			log.Fatal(err)
		}
		machine := sccsim.MustNew(sccsim.DefaultConfig())
		for d := 0; d < machine.VoltageDomains(); d++ {
			if err := machine.SetDomainMHz(d, mhz); err != nil {
				log.Fatal(err)
			}
		}
		res, err := rcce.Run(pr, machine, rcce.DefaultOptions(cores))
		if err != nil {
			log.Fatal(err)
		}
		seconds := res.Seconds()
		watts := machine.PowerEstimate()
		fmt.Printf("%8d %10.3f %10.1f %10.3f\n", mhz, seconds*1e3, watts, watts*seconds)
	}
	fmt.Println()
	fmt.Println("Higher clocks finish sooner but burn superlinear power;")
	fmt.Println("the energy column shows where race-to-idle stops paying.")
}
