package hsmcc

// One benchmark per table and figure of the paper's evaluation, plus one
// ablation per design choice called out in DESIGN.md §6. Each benchmark
// executes the full experiment (translate + simulate) and reports the
// scientifically relevant quantity (speedup or gain) as a custom metric,
// so `go test -bench=. -benchmem` regenerates the whole evaluation.
//
// Benchmarks run at a reduced problem scale and core count so the sweep
// completes in minutes; cmd/hsmbench reproduces the full-size numbers
// (recorded in EXPERIMENTS.md).

import (
	"os"
	"testing"

	"hsmcc/internal/bench"
	"hsmcc/internal/core"
	"hsmcc/internal/partition"
	"hsmcc/internal/pthreadrt"
	"hsmcc/internal/rcce"
	"hsmcc/internal/sccsim"
)

// benchConfig is the reduced configuration used by the testing.B suite.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Threads = 16
	cfg.Scale = 0.15
	return cfg
}

func example41Source(b *testing.B) string {
	b.Helper()
	src, err := os.ReadFile("testdata/example41.c")
	if err != nil {
		b.Fatalf("read example41.c: %v", err)
	}
	return string(src)
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

// BenchmarkTable41 regenerates the per-variable analysis of Table 4.1.
func BenchmarkTable41(b *testing.B) {
	src := example41Source(b)
	for i := 0; i < b.N; i++ {
		p, err := core.Analyze("example41.c", src, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if p.Table41() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable42 regenerates the sharing-status table of Table 4.2.
func BenchmarkTable42(b *testing.B) {
	src := example41Source(b)
	for i := 0; i < b.N; i++ {
		p, err := core.Analyze("example41.c", src, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if p.Table42() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable61 renders the SCC configuration of Table 6.1.
func BenchmarkTable61(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if sccsim.DefaultConfig().Table61(32) == "" {
			b.Fatal("empty table")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 6.1 — baseline vs off-chip RCCE, one bench per benchmark bar
// ---------------------------------------------------------------------------

func benchFig61(b *testing.B, key string) {
	cfg := benchConfig()
	w, ok := bench.ByKey(key)
	if !ok {
		b.Fatalf("no workload %s", key)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		base, err := bench.RunBaseline(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		conv, err := bench.RunRCCE(w, cfg, partition.PolicyOffChipOnly)
		if err != nil {
			b.Fatal(err)
		}
		if !bench.SameResults(base.Output, conv.Output) {
			b.Fatal("results diverge")
		}
		speedup = bench.Speedup(base, conv)
	}
	b.ReportMetric(speedup, "speedup")
}

func BenchmarkFig61_Pi(b *testing.B)     { benchFig61(b, "pi") }
func BenchmarkFig61_Sum35(b *testing.B)  { benchFig61(b, "sum35") }
func BenchmarkFig61_Primes(b *testing.B) { benchFig61(b, "primes") }
func BenchmarkFig61_LU(b *testing.B)     { benchFig61(b, "lu") }
func BenchmarkFig61_Dot(b *testing.B)    { benchFig61(b, "dot") }
func BenchmarkFig61_Stream(b *testing.B) { benchFig61(b, "stream") }

// The expanded corpus, measured under the same baseline-vs-off-chip
// protocol as the thesis benchmarks.
func BenchmarkCorpus_Histogram(b *testing.B) { benchFig61(b, "hist") }
func BenchmarkCorpus_KMeans(b *testing.B)    { benchFig61(b, "kmeans") }
func BenchmarkCorpus_MatMul(b *testing.B)    { benchFig61(b, "matmul") }
func BenchmarkCorpus_ProdCons(b *testing.B)  { benchFig61(b, "prodcons") }

// ---------------------------------------------------------------------------
// Figure 6.2 — off-chip vs MPB placement, one bench per benchmark pair
// ---------------------------------------------------------------------------

func benchFig62(b *testing.B, key string) {
	cfg := benchConfig()
	w, ok := bench.ByKey(key)
	if !ok {
		b.Fatalf("no workload %s", key)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		off, err := bench.RunRCCE(w, cfg, partition.PolicyOffChipOnly)
		if err != nil {
			b.Fatal(err)
		}
		on, err := bench.RunRCCE(w, cfg, partition.PolicySizeAscending)
		if err != nil {
			b.Fatal(err)
		}
		if !bench.SameResults(off.Output, on.Output) {
			b.Fatal("results diverge")
		}
		gain = float64(off.Makespan) / float64(on.Makespan)
	}
	b.ReportMetric(gain, "mpb-gain")
}

func BenchmarkFig62_Pi(b *testing.B)     { benchFig62(b, "pi") }
func BenchmarkFig62_Sum35(b *testing.B)  { benchFig62(b, "sum35") }
func BenchmarkFig62_Primes(b *testing.B) { benchFig62(b, "primes") }
func BenchmarkFig62_LU(b *testing.B)     { benchFig62(b, "lu") }
func BenchmarkFig62_Dot(b *testing.B)    { benchFig62(b, "dot") }
func BenchmarkFig62_Stream(b *testing.B) { benchFig62(b, "stream") }

// ---------------------------------------------------------------------------
// Figure 6.3 — Pi speedup vs core count
// ---------------------------------------------------------------------------

// BenchmarkFig63_Scaling sweeps Pi over core counts and reports the
// 16-core speedup as the headline metric.
func BenchmarkFig63_Scaling(b *testing.B) {
	cfg := benchConfig()
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig63(cfg, []int{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].Speedup
	}
	b.ReportMetric(last, "speedup-16core")
}

// ---------------------------------------------------------------------------
// Grid harness
// ---------------------------------------------------------------------------

// BenchmarkGrid_Parallel measures the parallel sweep itself: a fixed
// sub-grid run through the worker pool, reporting wall-clock per full
// sweep. Compare against -parallel 1 (BenchmarkGrid_Sequential) to see
// the harness-level speedup on the host machine.
func benchGrid(b *testing.B, workers int) {
	g := bench.Grid{
		Name:      "bench",
		Workloads: []string{"pi", "stream", "hist", "matmul"},
		Cores:     []int{4, 8},
		Policies:  []string{"offchip", "size"},
		Scale:     0.05,
	}
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunGrid(g, bench.RunOptions{Parallel: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	}
}

func BenchmarkGrid_Sequential(b *testing.B) { benchGrid(b, 1) }
func BenchmarkGrid_Parallel(b *testing.B)   { benchGrid(b, 0) }

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ---------------------------------------------------------------------------

// BenchmarkAblation_SharedCacheable compares the real SCC (uncacheable
// shared pages) against a hypothetical coherent machine that caches them:
// the gap is the price of software-managed shared memory, and the reason
// Stage 4 matters.
func BenchmarkAblation_SharedCacheable(b *testing.B) {
	w, _ := bench.ByKey("stream")
	real := benchConfig()
	hypo := benchConfig()
	hypo.Machine = func() *sccsim.Machine {
		c := sccsim.DefaultConfig()
		c.SharedCacheable = true
		return sccsim.MustNew(c)
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		u, err := bench.RunRCCE(w, real, partition.PolicyOffChipOnly)
		if err != nil {
			b.Fatal(err)
		}
		c, err := bench.RunRCCE(w, hypo, partition.PolicyOffChipOnly)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(u.Makespan) / float64(c.Makespan)
	}
	b.ReportMetric(ratio, "uncached-penalty")
}

// BenchmarkAblation_MemControllers varies the number of memory
// controllers serving uncached shared traffic (1 vs the SCC's 4 vs 8).
func BenchmarkAblation_MemControllers(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		n := n
		b.Run(map[int]string{1: "1MC", 4: "4MC", 8: "8MC"}[n], func(b *testing.B) {
			w, _ := bench.ByKey("stream")
			cfg := benchConfig()
			cfg.Machine = func() *sccsim.Machine {
				c := sccsim.DefaultConfig()
				c.MemControllers = n
				return sccsim.MustNew(c)
			}
			var secs float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunRCCE(w, cfg, partition.PolicyOffChipOnly)
				if err != nil {
					b.Fatal(err)
				}
				secs = r.Seconds()
			}
			b.ReportMetric(secs*1e3, "sim-ms")
		})
	}
}

// BenchmarkAblation_MPBPlacement compares block-distributed on-chip
// arrays (each rank's slice in its own MPB section) against clumping
// everything into rank 0's section (remote hops for everyone else).
func BenchmarkAblation_MPBPlacement(b *testing.B) {
	w, _ := bench.ByKey("stream")
	striped := benchConfig()
	clumped := benchConfig()
	clumped.RCCE = func(n int) rcce.Options {
		o := rcce.DefaultOptions(n)
		o.StripeMPB = false
		return o
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		s, err := bench.RunRCCE(w, striped, partition.PolicySizeAscending)
		if err != nil {
			b.Fatal(err)
		}
		c, err := bench.RunRCCE(w, clumped, partition.PolicySizeAscending)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(c.Makespan) / float64(s.Makespan)
	}
	b.ReportMetric(ratio, "striping-gain")
}

// BenchmarkAblation_PartitionPolicy compares Algorithm 3's size-ascending
// greedy against frequency-density placement under MPB pressure (a budget
// too small for everything).
func BenchmarkAblation_PartitionPolicy(b *testing.B) {
	w, _ := bench.ByKey("dot")
	cfg := benchConfig()
	cfg.MPBCapacity = 24 * 1024 // force hard choices
	var ratio float64
	for i := 0; i < b.N; i++ {
		size, err := bench.RunRCCE(w, cfg, partition.PolicySizeAscending)
		if err != nil {
			b.Fatal(err)
		}
		freq, err := bench.RunRCCE(w, cfg, partition.PolicyFrequencyDensity)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(size.Makespan) / float64(freq.Makespan)
	}
	b.ReportMetric(ratio, "size-vs-freq")
}

// BenchmarkAblation_Quantum varies the baseline scheduler quantum: the
// smaller the timeslice, the more context-switch overhead the 16-thread
// single-core baseline pays.
func BenchmarkAblation_Quantum(b *testing.B) {
	for _, q := range []int{1_000, 10_000, 100_000} {
		q := q
		b.Run(map[int]string{1_000: "1k", 10_000: "10k", 100_000: "100k"}[q], func(b *testing.B) {
			w, _ := bench.ByKey("pi")
			cfg := benchConfig()
			cfg.Baseline = pthreadrt.DefaultOptions()
			cfg.Baseline.QuantumCycles = q
			var secs float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunBaseline(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				secs = r.Seconds()
			}
			b.ReportMetric(secs*1e3, "sim-ms")
		})
	}
}
